//! The fleet scheduler: N tracker sessions time-sharing one shared
//! [`PimArrayPool`], with admission control, EDF + fair-share
//! scheduling, degrade-ladder load shedding and checkpoint eviction.

use crate::flight::{DumpReason, FlightDump, FlightFrame, FlightRecorder};
use crate::session::{ServeError, SessionSpec, SessionStats, StepOutcome};
use pimvo_core::{BackendKind, Checkpoint, DegradeRung, Tracker, TrackerBuilder, TrackingState};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_pim::{
    ArrayConfig, LoweredCache, LoweredCacheStats, PimArrayPool, PimMachine, PimMachineBuilder,
    SessionId,
};
use pimvo_telemetry::{Severity, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

/// Circuit-breaker state of one session
/// ([`crate::BreakerConfig`] on the spec arms it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally.
    Closed,
    /// Tripped: the session is not scheduled until the fleet's virtual
    /// clock reaches `until`.
    Open {
        /// Virtual cycle at which the open interval elapses.
        until: u64,
        /// The open interval that was applied (doubles per failed
        /// probe, up to [`crate::BreakerConfig::backoff_max`]).
        backoff: u64,
    },
    /// Backoff elapsed: the session's next frame runs as a single
    /// probe — success closes the breaker, failure re-trips it with a
    /// longer backoff.
    HalfOpen {
        /// The open interval the last trip applied.
        backoff: u64,
    },
}

/// Residency of a session's tracker state.
enum Residency {
    /// Never ran — no state beyond the spec.
    Cold,
    /// Tracker in memory (holds a one-array staging pool while not
    /// running; the shared fleet pool is swapped in per frame).
    Resident(Box<Tracker>),
    /// Serialized checkpoint — zero resident arrays.
    Evicted(Vec<u8>),
}

/// One frame waiting in a session's admission queue.
struct QueuedFrame {
    gray: GrayImage,
    depth: DepthImage,
    /// Fleet virtual time (shared-pool `wall_cycles`) at submission.
    submitted_at: u64,
    /// `submitted_at + deadline_cycles`, for deadline sessions.
    deadline_at: Option<u64>,
}

struct Session {
    spec: SessionSpec,
    residency: Residency,
    queue: VecDeque<QueuedFrame>,
    stats: SessionStats,
    /// Ladder rung the fleet pins the session to (load shedding).
    shed_rung: DegradeRung,
    breaker: BreakerState,
    /// Completed-frame counter values at recent failures, pruned to
    /// the breaker's failure window.
    failure_marks: VecDeque<u64>,
    /// Last-N-frames op-trace ring; `Some` once the first frame of a
    /// session with [`SessionSpec::flight_recorder`] armed completes.
    flight: Option<FlightRecorder>,
}

/// Deterministic multi-tenant scheduler over one shared array pool.
///
/// See the crate docs for the serving model. All timing is *virtual*:
/// the shared pool's [`PimArrayPool::wall_cycles`] ledger is the fleet
/// clock, so latencies, deadlines and scheduling order are
/// reproducible bit-for-bit across runs and host machines.
pub struct FleetScheduler {
    /// The shared fleet pool. Swapped into the running session's
    /// backend for the duration of exactly one frame.
    shared: PimArrayPool,
    sessions: BTreeMap<SessionId, Session>,
    telemetry: Telemetry,
    /// Fleet-wide lowered-program memo table: shared by the pool and
    /// every tracker built for a session, so N sessions lower each
    /// distinct `(program, level, config)` triple exactly once.
    lowered: LoweredCache,
    /// Directory flight-recorder dumps are written to.
    flight_dir: PathBuf,
}

impl FleetScheduler {
    /// Creates a fleet over `arrays` six-bank QVGA arrays.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        Self::from_builder(&PimMachine::builder(ArrayConfig::qvga_banks(6)), arrays)
    }

    /// Creates a fleet whose shared arrays are stamped from an explicit
    /// machine builder (fault models, custom cost tables).
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn from_builder(builder: &PimMachineBuilder, arrays: usize) -> Self {
        let lowered = LoweredCache::new();
        let mut shared = builder.build_pool(arrays);
        shared.set_lowered_cache(lowered.clone());
        FleetScheduler {
            shared,
            sessions: BTreeMap::new(),
            telemetry: Telemetry::off(),
            lowered,
            flight_dir: std::env::temp_dir(),
        }
    }

    /// Replaces the fleet's lowered-program cache (a fresh private one
    /// is created by default). The shared pool and every tracker built
    /// *after* this call use the new handle; already-resident trackers
    /// keep the one they were built with.
    pub fn set_lowered_cache(&mut self, cache: LoweredCache) {
        self.shared.set_lowered_cache(cache.clone());
        self.lowered = cache;
    }

    /// Hit/miss/size counters of the fleet's lowered-program cache.
    /// `misses` counts distinct `(program, level, config)` triples
    /// lowered — it stays flat however many sessions join the fleet.
    #[must_use]
    pub fn lowered_stats(&self) -> LoweredCacheStats {
        self.lowered.stats()
    }

    /// Sets the directory flight-recorder dumps are written to
    /// (default: the system temp directory). The directory must exist.
    pub fn set_flight_dir(&mut self, dir: impl Into<PathBuf>) {
        self.flight_dir = dir.into();
    }

    /// Attaches a telemetry handle: pool phases on the shared pool,
    /// per-frame tracker spans and the `pimvo_serve_*` fleet counters.
    /// Attach before registering sessions — already-resident trackers
    /// keep the handle they were built with.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.shared.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Registers a session. Cold until its first frame runs: no
    /// tracker, no arrays, no checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered.
    pub fn add_session(&mut self, id: SessionId, spec: SessionSpec) {
        let prev = self.sessions.insert(
            id,
            Session {
                spec,
                residency: Residency::Cold,
                queue: VecDeque::new(),
                stats: SessionStats::default(),
                shed_rung: DegradeRung::Full,
                breaker: BreakerState::Closed,
                failure_marks: VecDeque::new(),
                flight: None,
            },
        );
        assert!(prev.is_none(), "session {} already registered", id.0);
    }

    /// The fleet's virtual clock: the shared pool's wall-cycle ledger.
    pub fn now_cycles(&self) -> u64 {
        self.shared.wall_cycles()
    }

    /// Shared view of the fleet pool.
    pub fn pool(&self) -> &PimArrayPool {
        &self.shared
    }

    /// Exclusive access to the shared fleet pool — fault-injection
    /// harnesses and scrub/quarantine drivers reach the pool through
    /// here between frames.
    pub fn pool_mut(&mut self) -> &mut PimArrayPool {
        &mut self.shared
    }

    /// The session's circuit-breaker state ([`BreakerState::Closed`]
    /// for sessions without a breaker armed).
    pub fn breaker_state(&self, id: SessionId) -> Option<BreakerState> {
        self.sessions.get(&id).map(|s| s.breaker)
    }

    /// Registered session ids, in order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Serving statistics of a session.
    pub fn stats(&self, id: SessionId) -> Option<&SessionStats> {
        self.sessions.get(&id).map(|s| &s.stats)
    }

    /// Whether the session currently holds a resident tracker.
    pub fn is_resident(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id).map(|s| &s.residency),
            Some(Residency::Resident(_))
        )
    }

    /// Frames waiting in the session's admission queue.
    pub fn queue_len(&self, id: SessionId) -> usize {
        self.sessions.get(&id).map_or(0, |s| s.queue.len())
    }

    /// Total backlogged frames across every session.
    pub fn backlog(&self) -> usize {
        self.sessions.values().map(|s| s.queue.len()).sum()
    }

    /// Offers a frame to the session's admission queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered id;
    /// [`ServeError::QueueFull`] when admission control sheds the
    /// frame (the shed is counted in the session's stats).
    pub fn submit_frame(
        &mut self,
        id: SessionId,
        gray: GrayImage,
        depth: DepthImage,
    ) -> Result<(), ServeError> {
        let now = self.shared.wall_cycles();
        let sess = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        sess.stats.submitted += 1;
        if sess.queue.len() >= sess.spec.max_queue {
            sess.stats.shed += 1;
            if self.telemetry.is_enabled() {
                self.telemetry.counter_add("pimvo_serve_shed_total", 1.0);
            }
            return Err(ServeError::QueueFull {
                session: id,
                capacity: sess.spec.max_queue,
            });
        }
        let deadline_at = sess.spec.deadline_cycles.map(|d| now + d);
        sess.queue.push_back(QueuedFrame {
            gray,
            depth,
            submitted_at: now,
            deadline_at,
        });
        Ok(())
    }

    /// Runs the next frame (earliest deadline first; least-served, then
    /// highest priority, then lowest session id on ties) to completion
    /// on the shared pool. Returns `Ok(None)` when every queue is
    /// empty.
    ///
    /// # Errors
    ///
    /// [`ServeError::Restore`] if the chosen session was evicted and
    /// its checkpoint fails to restore (the frame stays queued).
    pub fn step(&mut self) -> Result<Option<StepOutcome>, ServeError> {
        self.sweep_breakers();
        let Some(id) = self.pick_next() else {
            return Ok(None);
        };
        self.ensure_resident(id)?;

        // flight recorder: record this frame's op trace on the shared
        // pool iff the session armed one; otherwise keep the pool
        // disarmed so recording can never leak across sessions
        let flight_frames = self.sessions[&id].spec.flight_recorder;
        match flight_frames {
            Some(_) => {
                if !self.shared.op_recorders_armed() {
                    self.shared
                        .arm_op_recorders(pimvo_pim::DEFAULT_OP_RING_CAPACITY);
                }
                self.shared.set_op_session(id.0);
                // discard anything recorded before this frame started
                let _ = self.shared.drain_op_trace();
            }
            None => {
                if self.shared.op_recorders_armed() {
                    self.shared.disarm_op_recorders();
                }
            }
        }

        let start = self.shared.wall_cycles();
        let health_before = self.shared.health();
        let dma_before = self.shared.dma_health();
        let lower_before = self.lowered.stats();
        let sess = self.sessions.get_mut(&id).expect("picked session exists");
        let probing = matches!(sess.breaker, BreakerState::HalfOpen { .. });
        if probing {
            sess.stats.breaker_probes += 1;
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter_add("pimvo_serve_breaker_probes_total", 1.0);
            }
        }
        let frame = sess.queue.pop_front().expect("picked session has work");
        let Residency::Resident(tracker) = &mut sess.residency else {
            unreachable!("ensure_resident loaded the tracker");
        };

        // Pin the fleet's shed rung, then run the frame on the shared
        // pool: the tracker's one-array staging pool is parked in
        // `self.shared` for the duration.
        if sess.spec.deadline_cycles.is_some() {
            tracker.set_shed_rung(sess.shed_rung);
        }
        let pool = tracker
            .pool_mut()
            .expect("serve sessions run the PIM backend");
        std::mem::swap(pool, &mut self.shared);
        let result = tracker.process_frame(&frame.gray, &frame.depth);
        let pool = tracker
            .pool_mut()
            .expect("serve sessions run the PIM backend");
        std::mem::swap(pool, &mut self.shared);
        // Frame-end settle: drain in-flight DMA and absorb trailing
        // host I/O (result reads issued after the frame's last
        // barrier) into the wall clock. Latency stays honest and a
        // checkpoint taken between frames owes nothing — without this
        // the uninterrupted and recovered clocks diverge by exactly
        // the pending transfer cycles.
        self.shared.dma_settle();
        let end = self.shared.wall_cycles();

        let latency = end - frame.submitted_at;
        let missed = frame.deadline_at.is_some_and(|d| end > d);
        sess.stats.completed += 1;
        sess.stats.latencies_cycles.push(latency);
        if missed {
            sess.stats.deadline_misses += 1;
            sess.shed_rung = sess.shed_rung.escalate();
        } else if let Some(d) = sess.spec.deadline_cycles {
            let relax = sess.spec.config.budget.relax_fraction;
            if (latency as f64) < relax * d as f64 {
                sess.shed_rung = sess.shed_rung.relax();
            }
        }
        let lost = matches!(result.state, TrackingState::Lost);
        if lost {
            sess.stats.lost_frames += 1;
        }
        // fault/quarantine attribution: whatever the shared pool
        // detected or quarantined during this frame is this session's
        // footprint (scrub passes can shrink counters, hence saturating)
        let health_after = self.shared.health();
        sess.stats.pool_detected += health_after
            .total_detected()
            .saturating_sub(health_before.total_detected());
        let quarantine_delta = health_after
            .quarantined_count()
            .saturating_sub(health_before.quarantined_count())
            as u64;
        sess.stats.pool_quarantines += quarantine_delta;
        // transfer-path attribution: channel faults absorbed by the
        // retry ladder are telemetry; a channel *quarantine* means the
        // session's transfers degraded to the synchronous port, which
        // counts against the breaker window like a lost frame
        let dma_delta = self.shared.dma_health().since(&dma_before);
        sess.stats.dma_faults += dma_delta.faults();
        sess.stats.dma_retries += dma_delta.retries;
        sess.stats.dma_quarantines += dma_delta.quarantines;
        // lowering attribution: cache lookups issued while this
        // session's frame ran. First frames miss (and populate the
        // shared table); every later session's frames hit.
        let lower_after = self.lowered.stats();
        let lower_hit_delta = lower_after.hits.saturating_sub(lower_before.hits);
        let lower_miss_delta = lower_after.misses.saturating_sub(lower_before.misses);
        sess.stats.lower_hits += lower_hit_delta;
        sess.stats.lower_misses += lower_miss_delta;
        if self.telemetry.is_enabled() {
            if lower_hit_delta > 0 {
                self.telemetry
                    .counter_add("pimvo_serve_lower_hits_total", lower_hit_delta as f64);
            }
            if lower_miss_delta > 0 {
                self.telemetry
                    .counter_add("pimvo_serve_lower_misses_total", lower_miss_delta as f64);
            }
            self.telemetry
                .gauge_set("pimvo_serve_lower_cache_bytes", lower_after.bytes as f64);
        }
        let dma_quarantined = dma_delta.quarantines > 0;
        let tripped = Self::update_breaker(sess, probing, lost || missed || dma_quarantined, end);
        if let Some(cap) = flight_frames {
            if let Some(trace) = self.shared.drain_op_trace() {
                let ring = sess.flight.get_or_insert_with(|| FlightRecorder::new(cap));
                ring.push(FlightFrame {
                    frame: sess.stats.completed,
                    wall_delta: end - start,
                    trace,
                });
                let reason = if tripped {
                    Some(DumpReason::BreakerTrip)
                } else if missed {
                    Some(DumpReason::DeadlineMiss)
                } else if quarantine_delta > 0 {
                    Some(DumpReason::Quarantine)
                } else if dma_quarantined {
                    Some(DumpReason::DmaQuarantine)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    let dump = FlightDump {
                        session: id.0,
                        reason,
                        frames: ring.snapshot(),
                    };
                    let path = self.flight_dir.join(format!(
                        "pimvo_flight_s{}_f{}_{}.bin",
                        id.0,
                        sess.stats.completed,
                        reason.as_str()
                    ));
                    match dump.save(&path) {
                        Ok(()) => {
                            sess.stats.flight_dumps.push(path.display().to_string());
                            if self.telemetry.is_enabled() {
                                self.telemetry
                                    .counter_add("pimvo_serve_flight_dumps_total", 1.0);
                                self.telemetry.log(
                                    Severity::Warn,
                                    "flight recorder dumped",
                                    &[
                                        ("session", id.0.to_string()),
                                        ("reason", reason.as_str().to_string()),
                                        ("path", path.display().to_string()),
                                    ],
                                );
                            }
                        }
                        Err(e) => {
                            if self.telemetry.is_enabled() {
                                self.telemetry.log(
                                    Severity::Error,
                                    "flight recorder dump failed",
                                    &[("session", id.0.to_string()), ("error", e.to_string())],
                                );
                            }
                        }
                    }
                }
            }
        }
        let outcome = StepOutcome {
            session: id,
            result,
            latency_cycles: latency,
            queue_cycles: start - frame.submitted_at,
            missed_deadline: missed,
            shed_rung: sess.shed_rung,
        };
        if tripped {
            // isolate the poisoned session through the existing
            // checkpoint eviction path; its queue stays intact and the
            // head frame becomes the half-open probe after backoff
            let until = match self.sessions[&id].breaker {
                BreakerState::Open { until, .. } => until,
                _ => unreachable!("a tripped breaker is open"),
            };
            self.evict(id)?;
            if self.telemetry.is_enabled() {
                self.telemetry
                    .counter_add("pimvo_serve_breaker_trips_total", 1.0);
                self.telemetry.log(
                    Severity::Error,
                    "session circuit breaker tripped",
                    &[
                        ("session", id.0.to_string()),
                        ("reopen_at_cycle", until.to_string()),
                    ],
                );
            }
        }
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("pimvo_serve_frames_total", 1.0);
            if missed {
                self.telemetry
                    .counter_add("pimvo_serve_deadline_miss_total", 1.0);
            }
        }
        Ok(Some(outcome))
    }

    /// Applies one completed frame's verdict to the session's breaker.
    /// Returns whether the breaker tripped open on this frame.
    fn update_breaker(sess: &mut Session, probing: bool, failed: bool, now: u64) -> bool {
        let Some(cfg) = sess.spec.breaker else {
            return false;
        };
        if failed {
            sess.stats.failures += 1;
        }
        if probing {
            if failed {
                // failed probe: re-trip with exponential backoff
                let prev = match sess.breaker {
                    BreakerState::HalfOpen { backoff } => backoff,
                    _ => cfg.backoff_base,
                };
                let next = prev
                    .saturating_mul(cfg.backoff_factor.max(1))
                    .min(cfg.backoff_max);
                sess.breaker = BreakerState::Open {
                    until: now + next,
                    backoff: next,
                };
                sess.stats.breaker_trips += 1;
            } else {
                sess.breaker = BreakerState::Closed;
            }
            sess.failure_marks.clear();
            return failed;
        }
        if !failed {
            return false;
        }
        sess.failure_marks.push_back(sess.stats.completed);
        while sess
            .failure_marks
            .front()
            .is_some_and(|&m| sess.stats.completed - m >= cfg.failure_window)
        {
            sess.failure_marks.pop_front();
        }
        if (sess.failure_marks.len() as u32) < cfg.trip_threshold {
            return false;
        }
        let backoff = cfg.backoff_base.min(cfg.backoff_max);
        sess.breaker = BreakerState::Open {
            until: now + backoff,
            backoff,
        };
        sess.stats.breaker_trips += 1;
        sess.failure_marks.clear();
        true
    }

    /// Advances breaker states against the virtual clock: elapsed open
    /// intervals become half-open probes. When *every* backlogged
    /// session is open — the shared pool would sit idle — the open
    /// session with the earliest reopen time probes early: backoff
    /// protects the pool from a noisy session, not the pool from work.
    fn sweep_breakers(&mut self) {
        let now = self.shared.wall_cycles();
        let mut any_ready = false;
        for s in self.sessions.values_mut() {
            if let BreakerState::Open { until, backoff } = s.breaker {
                if now >= until {
                    s.breaker = BreakerState::HalfOpen { backoff };
                }
            }
            if !s.queue.is_empty() && !matches!(s.breaker, BreakerState::Open { .. }) {
                any_ready = true;
            }
        }
        if any_ready {
            return;
        }
        let earliest = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.queue.is_empty())
            .filter_map(|(id, s)| match s.breaker {
                BreakerState::Open { until, backoff } => Some((until, *id, backoff)),
                _ => None,
            })
            .min();
        if let Some((_, id, backoff)) = earliest {
            let s = self.sessions.get_mut(&id).expect("id from iteration");
            s.breaker = BreakerState::HalfOpen { backoff };
        }
    }

    /// Drains every queue, one frame at a time, in scheduling order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ServeError::Restore`] (frames already
    /// completed are returned by value inside the error-free case
    /// only; the scheduler state itself stays consistent).
    pub fn run_until_idle(&mut self) -> Result<Vec<StepOutcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(o) = self.step()? {
            out.push(o);
        }
        Ok(out)
    }

    /// Evicts a resident session to checkpoint bytes: the tracker (and
    /// its staging array) is dropped, leaving zero resident arrays.
    /// Returns `false` if the session was already cold or evicted.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an unregistered id.
    pub fn evict(&mut self, id: SessionId) -> Result<bool, ServeError> {
        let sess = self
            .sessions
            .get_mut(&id)
            .ok_or(ServeError::UnknownSession(id))?;
        let Residency::Resident(tracker) = &sess.residency else {
            return Ok(false);
        };
        let bytes = tracker.checkpoint().to_bytes();
        sess.residency = Residency::Evicted(bytes);
        sess.stats.evictions += 1;
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter_add("pimvo_serve_evictions_total", 1.0);
        }
        Ok(true)
    }

    /// Evicts every resident session whose queue is empty (the cold
    /// set). Returns how many were evicted.
    pub fn evict_idle(&mut self) -> usize {
        let idle: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.queue.is_empty() && matches!(s.residency, Residency::Resident(_)))
            .map(|(id, _)| *id)
            .collect();
        for id in &idle {
            let _ = self.evict(*id);
        }
        idle.len()
    }

    /// EDF with least-served fair-share: the backlogged session with
    /// the earliest head-frame deadline wins; `None` deadlines sort
    /// last (background). Ties: fewest completed frames, then highest
    /// priority, then lowest session id — a total, deterministic order.
    /// Sessions whose circuit breaker is open are not candidates.
    fn pick_next(&self) -> Option<SessionId> {
        self.sessions
            .iter()
            .filter(|(_, s)| !s.queue.is_empty())
            .filter(|(_, s)| !matches!(s.breaker, BreakerState::Open { .. }))
            .min_by_key(|(id, s)| {
                let deadline = s
                    .queue
                    .front()
                    .and_then(|f| f.deadline_at)
                    .unwrap_or(u64::MAX);
                (
                    deadline,
                    s.stats.completed,
                    std::cmp::Reverse(s.spec.priority),
                    **id,
                )
            })
            .map(|(id, _)| *id)
    }

    /// Loads the session's tracker: builds it cold, or restores it
    /// from its eviction checkpoint.
    fn ensure_resident(&mut self, id: SessionId) -> Result<(), ServeError> {
        let telemetry = self.telemetry.clone();
        let lowered = self.lowered.clone();
        let sess = self.sessions.get_mut(&id).expect("caller checked id");
        match &sess.residency {
            Residency::Resident(_) => Ok(()),
            Residency::Cold => {
                sess.residency =
                    Residency::Resident(Box::new(build_tracker(&sess.spec, &telemetry, &lowered)));
                Ok(())
            }
            Residency::Evicted(bytes) => {
                let ckpt = Checkpoint::from_bytes(bytes)?;
                let mut tracker = build_tracker(&sess.spec, &telemetry, &lowered);
                tracker.restore(&ckpt)?;
                sess.residency = Residency::Resident(Box::new(tracker));
                sess.stats.restores += 1;
                if telemetry.is_enabled() {
                    telemetry.counter_add("pimvo_serve_restores_total", 1.0);
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fleet manifest: crash-consistent recovery payload
// ---------------------------------------------------------------------

/// Manifest payload version; bumped on layout changes.
pub(crate) const MANIFEST_PAYLOAD_VERSION: u16 = 1;

impl FleetScheduler {
    /// Serializes the fleet's recoverable state: the virtual clock,
    /// pool health (quarantine flags, probation countdowns, recovery
    /// counters) and, per session, the scheduler bookkeeping (stats,
    /// shed rung, breaker state) plus a tracker checkpoint blob —
    /// taken in place for resident sessions, reused for evicted ones.
    ///
    /// In-flight queued frames are deliberately *not* serialized:
    /// a crash loses whatever had not completed, and the harness
    /// resubmits from the last committed frame (at-least-once
    /// submission). Remap tables and raw array contents are physical
    /// simulator state and rebuild from scratch, like a device reboot.
    pub(crate) fn manifest_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        push_u64(&mut buf, self.shared.wall_cycles());
        let health = self.shared.health();
        push_u64(&mut buf, health.quarantined.len() as u64);
        for i in 0..health.quarantined.len() {
            buf.push(health.quarantined[i] as u8);
            push_u64(&mut buf, health.probation[i]);
        }
        push_u64(&mut buf, health.retries);
        push_u64(&mut buf, health.redispatches);
        push_u64(&mut buf, health.dirty_accepted);
        push_u64(&mut buf, self.sessions.len() as u64);
        for (id, sess) in &self.sessions {
            push_u32(&mut buf, id.0);
            buf.push(sess.shed_rung.index() as u8);
            match sess.breaker {
                BreakerState::Closed => {
                    buf.push(0);
                    push_u64(&mut buf, 0);
                    push_u64(&mut buf, 0);
                }
                BreakerState::Open { until, backoff } => {
                    buf.push(1);
                    push_u64(&mut buf, until);
                    push_u64(&mut buf, backoff);
                }
                BreakerState::HalfOpen { backoff } => {
                    buf.push(2);
                    push_u64(&mut buf, 0);
                    push_u64(&mut buf, backoff);
                }
            }
            push_u64(&mut buf, sess.failure_marks.len() as u64);
            for &m in &sess.failure_marks {
                push_u64(&mut buf, m);
            }
            let st = &sess.stats;
            for v in [
                st.submitted,
                st.completed,
                st.shed,
                st.deadline_misses,
                st.evictions,
                st.restores,
                st.lost_frames,
                st.failures,
                st.breaker_trips,
                st.breaker_probes,
                st.pool_detected,
                st.pool_quarantines,
            ] {
                push_u64(&mut buf, v);
            }
            push_u64(&mut buf, st.latencies_cycles.len() as u64);
            for &l in &st.latencies_cycles {
                push_u64(&mut buf, l);
            }
            let blob: Option<Vec<u8>> = match &sess.residency {
                Residency::Cold => None,
                Residency::Resident(tracker) => Some(tracker.checkpoint().to_bytes()),
                Residency::Evicted(bytes) => Some(bytes.clone()),
            };
            match blob {
                None => {
                    buf.push(0);
                    push_u64(&mut buf, 0);
                }
                Some(bytes) => {
                    buf.push(1);
                    push_u64(&mut buf, bytes.len() as u64);
                    buf.extend_from_slice(&bytes);
                }
            }
        }
        buf
    }

    /// Rebuilds a fleet from a manifest payload after a hard kill: a
    /// fresh pool is stamped from `builder`, the virtual clock, pool
    /// health and probation countdowns are restored, and every session
    /// comes back with its stats/rung/breaker state and its checkpoint
    /// blob staged as [`Residency::Evicted`] — the next frame restores
    /// the tracker bit-exactly through the ordinary eviction path.
    ///
    /// `specs` must cover exactly the session ids in the manifest
    /// (configs are additionally verified against each blob's config
    /// hash when the session first runs).
    pub(crate) fn from_manifest_payload(
        builder: &PimMachineBuilder,
        arrays: usize,
        specs: &[(SessionId, SessionSpec)],
        payload: &[u8],
    ) -> Result<FleetScheduler, StoreError> {
        let mut fleet = FleetScheduler::from_builder(builder, arrays);
        let c = &mut 0usize;
        let wall = read_u64(payload, c)?;
        let n = read_u64(payload, c)? as usize;
        if n != arrays {
            return Err(StoreError::Malformed("pool size mismatch"));
        }
        let mut quarantined = vec![false; n];
        let mut probation = vec![0u64; n];
        for i in 0..n {
            quarantined[i] = read_u8(payload, c)? != 0;
            probation[i] = read_u64(payload, c)?;
        }
        let retries = read_u64(payload, c)?;
        let redispatches = read_u64(payload, c)?;
        let dirty_accepted = read_u64(payload, c)?;
        let health = pimvo_pim::PoolHealth {
            arrays: vec![Default::default(); n],
            quarantined,
            retries,
            redispatches,
            dirty_accepted,
            probation: vec![0; n],
            remapped_rows: vec![0; n],
            scrubs: 0,
            rehabilitated: 0,
        };
        fleet
            .shared
            .import_health(&health)
            .map_err(|_| StoreError::Malformed("pool health rejected"))?;
        fleet
            .shared
            .restore_probation(&probation)
            .map_err(|_| StoreError::Malformed("probation vector rejected"))?;
        fleet.shared.restore_wall_cycles(wall);

        let spec_map: BTreeMap<SessionId, SessionSpec> = specs.iter().cloned().collect();
        if spec_map.len() != specs.len() {
            return Err(StoreError::Malformed("duplicate session spec"));
        }
        let count = read_u64(payload, c)? as usize;
        if count != spec_map.len() {
            return Err(StoreError::Malformed("session count mismatch"));
        }
        for _ in 0..count {
            let id = SessionId(read_u32(payload, c)?);
            let spec = spec_map
                .get(&id)
                .ok_or(StoreError::Malformed("manifest session missing a spec"))?
                .clone();
            let shed_rung = DegradeRung::from_index(read_u8(payload, c)? as usize);
            let tag = read_u8(payload, c)?;
            let until = read_u64(payload, c)?;
            let backoff = read_u64(payload, c)?;
            let breaker = match tag {
                0 => BreakerState::Closed,
                1 => BreakerState::Open { until, backoff },
                2 => BreakerState::HalfOpen { backoff },
                _ => return Err(StoreError::Malformed("unknown breaker state")),
            };
            let marks = read_u64(payload, c)? as usize;
            let mut failure_marks = VecDeque::with_capacity(marks.min(1024));
            for _ in 0..marks {
                failure_marks.push_back(read_u64(payload, c)?);
            }
            let mut vals = [0u64; 12];
            for v in &mut vals {
                *v = read_u64(payload, c)?;
            }
            let lat = read_u64(payload, c)? as usize;
            let mut latencies_cycles = Vec::with_capacity(lat.min(1 << 20));
            for _ in 0..lat {
                latencies_cycles.push(read_u64(payload, c)?);
            }
            let stats = SessionStats {
                submitted: vals[0],
                completed: vals[1],
                shed: vals[2],
                deadline_misses: vals[3],
                evictions: vals[4],
                restores: vals[5],
                lost_frames: vals[6],
                failures: vals[7],
                breaker_trips: vals[8],
                breaker_probes: vals[9],
                pool_detected: vals[10],
                pool_quarantines: vals[11],
                latencies_cycles,
                // dumps are incident artifacts, not recoverable state
                flight_dumps: Vec::new(),
                // DMA counters are incident telemetry too: channels
                // rebuild fresh on recovery, like array contents
                dma_faults: 0,
                dma_retries: 0,
                dma_quarantines: 0,
                // host-side cache accounting restarts with the fresh
                // process-local cache — replay stays bit-identical
                lower_hits: 0,
                lower_misses: 0,
            };
            let residency = match read_u8(payload, c)? {
                0 => {
                    let _ = read_u64(payload, c)?;
                    Residency::Cold
                }
                1 => {
                    let len = read_u64(payload, c)? as usize;
                    Residency::Evicted(read_bytes(payload, c, len)?.to_vec())
                }
                _ => return Err(StoreError::Malformed("unknown residency tag")),
            };
            let prev = fleet.sessions.insert(
                id,
                Session {
                    spec,
                    residency,
                    queue: VecDeque::new(),
                    stats,
                    shed_rung,
                    breaker,
                    failure_marks,
                    flight: None,
                },
            );
            if prev.is_some() {
                return Err(StoreError::Malformed("duplicate session in manifest"));
            }
        }
        if *c != payload.len() {
            return Err(StoreError::Malformed("trailing bytes in manifest"));
        }
        Ok(fleet)
    }

    /// Recovers a fleet from a [`FleetCheckpointStore`] manifest on
    /// disk after a simulated hard kill. See
    /// [`FleetCheckpointStore::save`] for what is (and is not) in the
    /// manifest.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: I/O, corruption (magic/version/CRC), or a
    /// manifest inconsistent with `builder`/`arrays`/`specs`.
    pub fn recover(
        store: &FleetCheckpointStore,
        builder: &PimMachineBuilder,
        arrays: usize,
        specs: &[(SessionId, SessionSpec)],
    ) -> Result<FleetScheduler, StoreError> {
        let payload = store.load_payload()?;
        Self::from_manifest_payload(builder, arrays, specs, &payload)
    }
}

use crate::store::{FleetCheckpointStore, StoreError};

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u8(bytes: &[u8], cursor: &mut usize) -> Result<u8, StoreError> {
    let b = read_bytes(bytes, cursor, 1)?;
    Ok(b[0])
}

fn read_u32(bytes: &[u8], cursor: &mut usize) -> Result<u32, StoreError> {
    let b = read_bytes(bytes, cursor, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, StoreError> {
    let b = read_bytes(bytes, cursor, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn read_bytes<'a>(bytes: &'a [u8], cursor: &mut usize, len: usize) -> Result<&'a [u8], StoreError> {
    let end = cursor
        .checked_add(len)
        .ok_or(StoreError::Malformed("length overflow"))?;
    if end > bytes.len() {
        return Err(StoreError::Malformed("truncated manifest"));
    }
    let out = &bytes[*cursor..end];
    *cursor = end;
    Ok(out)
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("arrays", &self.shared.len())
            .field("sessions", &self.sessions.len())
            .field("backlog", &self.backlog())
            .field("now_cycles", &self.shared.wall_cycles())
            .finish()
    }
}

/// Builds a session tracker through [`TrackerBuilder`]: PIM backend on
/// a one-array staging pool, with the session deadline armed as the
/// tracker's own per-frame cycle budget so the shed ladder has
/// in-frame enforcement.
fn build_tracker(spec: &SessionSpec, telemetry: &Telemetry, lowered: &LoweredCache) -> Tracker {
    let mut config = spec.config.clone();
    if let Some(d) = spec.deadline_cycles {
        config.budget.cycles_per_frame = Some(d);
    }
    TrackerBuilder::new(config)
        .backend(BackendKind::Pim)
        .telemetry(telemetry.clone())
        .lowered_cache(lowered.clone())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_core::TrackerConfig;

    fn textured_frame(shift: f64) -> (GrayImage, DepthImage) {
        let gray = GrayImage::from_fn(320, 240, |x, y| {
            let xs = x as f64 + shift;
            let y = y as f64;
            (((xs * 0.55).sin() + (y * 0.41).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0
                + 120.0) as u8
        });
        let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
        (gray, depth)
    }

    #[test]
    fn cold_sessions_hold_no_tracker_until_first_step() {
        let mut fleet = FleetScheduler::new(2);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        assert!(!fleet.is_resident(SessionId(1)));
        let (g, d) = textured_frame(0.0);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        assert!(
            !fleet.is_resident(SessionId(1)),
            "submission must not build"
        );
        let out = fleet.step().unwrap().expect("one frame queued");
        assert_eq!(out.session, SessionId(1));
        assert!(fleet.is_resident(SessionId(1)));
    }

    #[test]
    fn admission_control_sheds_past_queue_capacity() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).max_queue(2),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let err = fleet.submit_frame(SessionId(1), g, d).unwrap_err();
        assert!(matches!(err, ServeError::QueueFull { capacity: 2, .. }));
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!((st.submitted, st.shed), (3, 1));
        assert!((st.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edf_runs_deadline_sessions_before_background() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        fleet.add_session(
            SessionId(2),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(u64::MAX / 2),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet.submit_frame(SessionId(2), g, d).unwrap();
        let first = fleet.step().unwrap().unwrap();
        assert_eq!(first.session, SessionId(2), "deadline session runs first");
        let second = fleet.step().unwrap().unwrap();
        assert_eq!(second.session, SessionId(1));
        assert!(fleet.step().unwrap().is_none());
    }

    #[test]
    fn fair_share_alternates_equal_background_sessions() {
        let mut fleet = FleetScheduler::new(1);
        for id in [1, 2] {
            fleet.add_session(SessionId(id), SessionSpec::new(TrackerConfig::default()));
        }
        let (g, d) = textured_frame(0.0);
        for _ in 0..2 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
            fleet
                .submit_frame(SessionId(2), g.clone(), d.clone())
                .unwrap();
        }
        let order: Vec<u32> = fleet
            .run_until_idle()
            .unwrap()
            .iter()
            .map(|o| o.session.0)
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2], "least-served alternation");
    }

    #[test]
    fn missed_deadline_escalates_the_shed_ladder() {
        let mut fleet = FleetScheduler::new(1);
        // 1-cycle deadline: every frame misses
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(1),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let o1 = fleet.step().unwrap().unwrap();
        assert!(o1.missed_deadline);
        assert_eq!(o1.shed_rung, DegradeRung::CapLmIterations);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o2 = fleet.step().unwrap().unwrap();
        assert_eq!(o2.shed_rung, DegradeRung::ReduceFeatures);
        assert!((fleet.stats(SessionId(1)).unwrap().miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generous_deadline_relaxes_the_ladder_again() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(1),
        );
        let (g, d) = textured_frame(0.0);
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        let _ = fleet.step().unwrap().unwrap(); // escalate once
                                                // widen the deadline: next frame lands well under relax_fraction
        fleet
            .sessions
            .get_mut(&SessionId(1))
            .unwrap()
            .spec
            .deadline_cycles = Some(u64::MAX / 2);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o = fleet.step().unwrap().unwrap();
        assert!(!o.missed_deadline);
        assert_eq!(o.shed_rung, DegradeRung::Full, "ladder relaxed back");
    }

    #[test]
    fn evict_idle_drops_resident_trackers() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        let (g, d) = textured_frame(0.0);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let _ = fleet.step().unwrap().unwrap();
        assert!(fleet.is_resident(SessionId(1)));
        assert_eq!(fleet.evict_idle(), 1);
        assert!(!fleet.is_resident(SessionId(1)));
        assert_eq!(fleet.stats(SessionId(1)).unwrap().evictions, 1);
        // evicting again is a no-op
        assert!(!fleet.evict(SessionId(1)).unwrap());
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let mut fleet = FleetScheduler::new(1);
        let (g, d) = textured_frame(0.0);
        let err = fleet.submit_frame(SessionId(9), g, d).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSession(SessionId(9))));
        assert!(matches!(
            fleet.evict(SessionId(9)),
            Err(ServeError::UnknownSession(_))
        ));
    }

    fn tight_breaker(base: u64) -> crate::BreakerConfig {
        crate::BreakerConfig {
            failure_window: 4,
            trip_threshold: 2,
            backoff_base: base,
            backoff_factor: 2,
            backoff_max: base * 8,
        }
    }

    #[test]
    fn breaker_trips_evicts_and_recovers_through_probe() {
        let mut fleet = FleetScheduler::new(1);
        // 1-cycle deadline: every frame misses and counts as a failure
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default())
                .deadline_cycles(1)
                .max_queue(4)
                .breaker(tight_breaker(1_000)),
        );
        let (g, d) = textured_frame(0.0);
        for _ in 0..3 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
        }
        let _ = fleet.step().unwrap().unwrap(); // miss 1: below threshold
        assert_eq!(
            fleet.breaker_state(SessionId(1)),
            Some(BreakerState::Closed)
        );
        let _ = fleet.step().unwrap().unwrap(); // miss 2: trips
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!((st.breaker_trips, st.failures), (1, 2));
        assert_eq!(st.evictions, 1, "trip evicts via the checkpoint path");
        assert!(!fleet.is_resident(SessionId(1)));
        assert!(matches!(
            fleet.breaker_state(SessionId(1)),
            Some(BreakerState::Open { backoff: 1_000, .. })
        ));

        // only open sessions are backlogged: the sweep promotes the
        // earliest reopen to a half-open probe instead of idling
        let o = fleet.step().unwrap().expect("probe frame runs");
        assert!(o.missed_deadline);
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!(st.breaker_probes, 1);
        assert_eq!(st.breaker_trips, 2, "failed probe re-trips");
        assert_eq!(st.restores, 1, "probe restored the evicted tracker");
        match fleet.breaker_state(SessionId(1)).unwrap() {
            BreakerState::Open { backoff, .. } => {
                assert_eq!(backoff, 2_000, "exponential backoff doubles");
            }
            other => panic!("expected re-tripped breaker, got {other:?}"),
        }

        // widen the deadline: the next probe succeeds and closes it
        fleet
            .sessions
            .get_mut(&SessionId(1))
            .unwrap()
            .spec
            .deadline_cycles = Some(u64::MAX / 2);
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o = fleet.step().unwrap().expect("second probe");
        assert!(!o.missed_deadline);
        assert_eq!(
            fleet.breaker_state(SessionId(1)),
            Some(BreakerState::Closed)
        );
        assert_eq!(fleet.stats(SessionId(1)).unwrap().breaker_probes, 2);
    }

    #[test]
    fn open_breaker_yields_the_pool_to_healthy_sessions() {
        let mut fleet = FleetScheduler::new(1);
        // session 1 trips on its first missed frame (threshold 1)
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default())
                .deadline_cycles(1)
                .max_queue(4)
                .breaker(crate::BreakerConfig {
                    trip_threshold: 1,
                    backoff_base: u64::MAX / 4,
                    backoff_max: u64::MAX / 2,
                    ..tight_breaker(1)
                }),
        );
        fleet.add_session(SessionId(2), SessionSpec::new(TrackerConfig::default()));
        let (g, d) = textured_frame(0.0);
        for _ in 0..2 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
            fleet
                .submit_frame(SessionId(2), g.clone(), d.clone())
                .unwrap();
        }
        // EDF picks the deadline session first; it misses and trips
        let first = fleet.step().unwrap().unwrap();
        assert_eq!(first.session, SessionId(1));
        assert!(matches!(
            fleet.breaker_state(SessionId(1)),
            Some(BreakerState::Open { .. })
        ));
        // while open, the healthy session gets every slot despite the
        // open session holding the earliest deadline
        for _ in 0..2 {
            let o = fleet.step().unwrap().unwrap();
            assert_eq!(o.session, SessionId(2), "open session must not run");
        }
        // with only the open session backlogged, it probes early
        let o = fleet.step().unwrap().unwrap();
        assert_eq!(o.session, SessionId(1));
        assert_eq!(fleet.stats(SessionId(1)).unwrap().breaker_probes, 1);
    }

    #[test]
    fn sessions_without_breaker_never_trip() {
        let mut fleet = FleetScheduler::new(1);
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).deadline_cycles(1),
        );
        let (g, d) = textured_frame(0.0);
        for _ in 0..3 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
            let _ = fleet.step().unwrap().unwrap();
        }
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!(st.deadline_misses, 3);
        assert_eq!((st.failures, st.breaker_trips), (0, 0));
        assert_eq!(
            fleet.breaker_state(SessionId(1)),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn manifest_recovery_replays_bit_identically() {
        let builder = PimMachine::builder(ArrayConfig::qvga_banks(6));
        let specs = vec![(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default()).max_queue(4),
        )];
        let mk_fleet = || {
            let mut f = FleetScheduler::from_builder(&builder, 2);
            for (id, spec) in &specs {
                f.add_session(*id, spec.clone());
            }
            f
        };

        // run three frames, checkpoint, then hard-kill (drop) the fleet
        let mut fleet = mk_fleet();
        let (g0, d0) = textured_frame(0.0);
        let (g1, d1) = textured_frame(0.8);
        let (g2, d2) = textured_frame(1.6);
        fleet.submit_frame(SessionId(1), g0, d0).unwrap();
        fleet.submit_frame(SessionId(1), g1, d1).unwrap();
        let _ = fleet.run_until_idle().unwrap();
        let dir = std::env::temp_dir().join(format!("pimvo_fleet_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = crate::FleetCheckpointStore::new(dir.join("fleet.ckpt"));
        store.save(&fleet).unwrap();
        let clock_at_save = fleet.now_cycles();

        // uninterrupted arm keeps going
        fleet
            .submit_frame(SessionId(1), g2.clone(), d2.clone())
            .unwrap();
        let want = fleet.run_until_idle().unwrap().remove(0);

        // recovered arm replays the same frame after the kill
        let mut recovered = FleetScheduler::recover(&store, &builder, 2, &specs).unwrap();
        assert_eq!(recovered.now_cycles(), clock_at_save, "clock restored");
        assert!(
            !recovered.is_resident(SessionId(1)),
            "session staged evicted"
        );
        assert_eq!(recovered.stats(SessionId(1)).unwrap().completed, 2);
        recovered.submit_frame(SessionId(1), g2, d2).unwrap();
        let got = recovered.run_until_idle().unwrap().remove(0);
        assert_eq!(
            got.result.pose_wc, want.result.pose_wc,
            "bit-identical pose"
        );
        assert_eq!(
            got.latency_cycles, want.latency_cycles,
            "identical virtual time"
        );
        assert_eq!(recovered.now_cycles(), fleet.now_cycles());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_rejects_corruption() {
        let builder = PimMachine::builder(ArrayConfig::qvga_banks(6));
        let mut fleet = FleetScheduler::from_builder(&builder, 1);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        let dir = std::env::temp_dir().join(format!("pimvo_fleet_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt");
        let store = crate::FleetCheckpointStore::new(&path);
        store.save(&fleet).unwrap();

        // flip one payload byte: CRC must catch it
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_payload(),
            Err(crate::StoreError::Crc { .. })
        ));

        // wrong magic (long enough to pass the length check)
        std::fs::write(&path, b"NOTAFLEETMANIFEST_____________").unwrap();
        assert!(matches!(
            store.load_payload(),
            Err(crate::StoreError::BadMagic)
        ));

        // truncation
        std::fs::write(&path, b"PIMVO").unwrap();
        assert!(matches!(
            store.load_payload(),
            Err(crate::StoreError::Malformed(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_recorder_dumps_on_deadline_miss_and_replays() {
        let dir = std::env::temp_dir().join(format!("pimvo_flight_fleet_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut fleet = FleetScheduler::new(2);
        fleet.set_flight_dir(&dir);
        // 1-cycle deadline: every frame misses, so every frame dumps
        fleet.add_session(
            SessionId(1),
            SessionSpec::new(TrackerConfig::default())
                .deadline_cycles(1)
                .max_queue(4)
                .flight_recorder(2),
        );
        let (g, d) = textured_frame(0.0);
        for _ in 0..2 {
            fleet
                .submit_frame(SessionId(1), g.clone(), d.clone())
                .unwrap();
            let _ = fleet.step().unwrap().unwrap();
        }
        let st = fleet.stats(SessionId(1)).unwrap();
        assert_eq!(st.flight_dumps.len(), 2);
        let dump =
            FlightDump::load(std::path::Path::new(&st.flight_dumps[1])).expect("dump decodes");
        assert_eq!(dump.session, 1);
        assert_eq!(dump.reason, DumpReason::DeadlineMiss);
        assert_eq!(dump.frames.len(), 2, "ring holds both frames");
        for f in &dump.frames {
            assert!(!f.trace.is_empty());
            assert_eq!(f.trace.dropped, 0);
            // the dependency DAG reproduces the frame's wall clock: the
            // critical path through the barrier chain is exactly the
            // pool cycles the scheduler charged this frame
            let prof = pimvo_telemetry::optrace::profile(&f.trace);
            assert_eq!(prof.critical_path_cycles, f.wall_delta);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_recorder_does_not_perturb_virtual_time() {
        let run = |armed: bool| {
            let mut fleet = FleetScheduler::new(2);
            let spec = SessionSpec::new(TrackerConfig::default());
            let spec = if armed { spec.flight_recorder(4) } else { spec };
            fleet.add_session(SessionId(1), spec);
            let (g, d) = textured_frame(0.0);
            fleet.submit_frame(SessionId(1), g, d).unwrap();
            let o = fleet.step().unwrap().unwrap();
            (o.latency_cycles, o.result.pose_wc, fleet.now_cycles())
        };
        assert_eq!(run(false), run(true), "recording is invisible to timing");
    }

    #[test]
    fn latency_accounting_is_virtual_and_monotonic() {
        let mut fleet = FleetScheduler::new(2);
        fleet.add_session(SessionId(1), SessionSpec::new(TrackerConfig::default()));
        let (g, d) = textured_frame(0.0);
        // two frames queued back to back: the second waits for the first
        fleet
            .submit_frame(SessionId(1), g.clone(), d.clone())
            .unwrap();
        fleet.submit_frame(SessionId(1), g, d).unwrap();
        let o1 = fleet.step().unwrap().unwrap();
        let o2 = fleet.step().unwrap().unwrap();
        assert_eq!(o1.queue_cycles, 0, "first frame starts immediately");
        assert!(o2.queue_cycles >= o1.latency_cycles - o1.queue_cycles);
        assert!(o2.latency_cycles > o1.latency_cycles);
        assert_eq!(fleet.now_cycles(), fleet.pool().wall_cycles());
        let p50 = fleet
            .stats(SessionId(1))
            .unwrap()
            .latency_percentile(50.0)
            .unwrap();
        assert!(p50 >= o1.latency_cycles.min(o2.latency_cycles));
    }
}
