//! Session specifications, per-session serving statistics and the
//! outcome record of one scheduler step.

use pimvo_core::{CheckpointError, DegradeRung, FrameResult, TrackerConfig};
use pimvo_pim::SessionId;

/// Everything the fleet needs to build and schedule one session.
///
/// The tracker itself is constructed lazily through
/// [`pimvo_core::TrackerBuilder`] with the PIM backend on a one-array
/// staging pool; while the session runs a frame, the scheduler swaps
/// the shared fleet pool in.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Estimator configuration (hashed into checkpoints — every
    /// restore of this session must present the same configuration).
    pub config: TrackerConfig,
    /// Frame deadline in pool cycles, measured from submission
    /// (virtual time). `None` marks a background session: it is
    /// scheduled after every deadline session and never sheds.
    pub deadline_cycles: Option<u64>,
    /// Admission-queue capacity; a submission beyond it is shed.
    pub max_queue: usize,
    /// Tie-break priority (higher first) among equal deadlines.
    pub priority: u8,
    /// Per-session circuit breaker; `None` (the default) disables it
    /// and preserves pre-breaker scheduling exactly.
    pub breaker: Option<BreakerConfig>,
    /// Flight recorder: keep the op traces of the last N completed
    /// frames and dump them to disk on breaker trip, deadline miss or
    /// pool quarantine. `None` (the default) records nothing and
    /// leaves execution bit- and cycle-identical.
    pub flight_recorder: Option<usize>,
}

impl SessionSpec {
    /// A background session (no deadline) with a 4-frame queue.
    pub fn new(config: TrackerConfig) -> Self {
        SessionSpec {
            config,
            deadline_cycles: None,
            max_queue: 4,
            priority: 0,
            breaker: None,
            flight_recorder: None,
        }
    }

    /// Sets the per-frame deadline in pool cycles. This also arms the
    /// tracker's own deadline supervisor with the same cycle budget,
    /// so the fleet's shed ladder has in-frame enforcement behind it.
    pub fn deadline_cycles(mut self, cycles: u64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Sets the admission-queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_queue(mut self, n: usize) -> Self {
        assert!(n > 0, "a session needs a queue capacity of at least 1");
        self.max_queue = n;
        self
    }

    /// Sets the scheduling priority (higher runs first on deadline
    /// ties).
    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Arms the per-session circuit breaker.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Arms the per-session flight recorder: the fleet keeps the op
    /// traces of the session's last `frames` completed frames and
    /// dumps the ring on breaker trip, deadline miss or pool
    /// quarantine (see [`crate::FlightDump`]).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn flight_recorder(mut self, frames: usize) -> Self {
        assert!(frames > 0, "a flight recorder needs at least one frame");
        self.flight_recorder = Some(frames);
        self
    }
}

/// Circuit-breaker policy of one session: trips a session that keeps
/// failing (frames ending [`pimvo_core::TrackingState::Lost`] or past
/// their deadline), isolating it from the shared pool with exponential
/// backoff in the virtual-cycle domain, then lets it back in through a
/// half-open single-frame probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Failures are counted over the session's last `failure_window`
    /// completed frames.
    pub failure_window: u64,
    /// Failures inside the window that trip the breaker open.
    pub trip_threshold: u32,
    /// First open interval, in virtual (pool) cycles.
    pub backoff_base: u64,
    /// Multiplier on the open interval per consecutive failed probe.
    pub backoff_factor: u64,
    /// Upper bound on the open interval.
    pub backoff_max: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_window: 8,
            trip_threshold: 3,
            backoff_base: 1_000_000,
            backoff_factor: 2,
            backoff_max: 16_000_000,
        }
    }
}

/// Cumulative serving statistics of one session.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Frames offered to the queue (accepted + shed).
    pub submitted: u64,
    /// Frames run to completion.
    pub completed: u64,
    /// Frames rejected by admission control (queue full).
    pub shed: u64,
    /// Completed frames that finished past their deadline.
    pub deadline_misses: u64,
    /// Times the session was evicted to checkpoint bytes.
    pub evictions: u64,
    /// Times the session was restored from checkpoint bytes.
    pub restores: u64,
    /// Per-completed-frame latency in pool cycles (submission →
    /// completion, queue wait included).
    pub latencies_cycles: Vec<u64>,
    /// Completed frames that ended in [`pimvo_core::TrackingState::Lost`].
    pub lost_frames: u64,
    /// Breaker-counted failures (lost frames and deadline misses while
    /// a breaker is armed).
    pub failures: u64,
    /// Times the session's circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Half-open single-frame probes run.
    pub breaker_probes: u64,
    /// Pool fault-detection events observed while this session's
    /// frames ran on the shared pool.
    pub pool_detected: u64,
    /// Arrays the pool quarantined while this session's frames ran.
    pub pool_quarantines: u64,
    /// DMA transfer faults (CRC rejects + timeouts) the shared pool's
    /// channels absorbed while this session's frames ran. Incident
    /// telemetry like [`SessionStats::flight_dumps`] — not part of the
    /// crash-recovery manifest.
    pub dma_faults: u64,
    /// DMA delivery retries charged while this session's frames ran.
    pub dma_retries: u64,
    /// DMA channels quarantined (degraded to the synchronous port)
    /// while this session's frames ran.
    pub dma_quarantines: u64,
    /// Lowered-program cache hits charged while this session's frames
    /// ran on the fleet. Host-side accounting only — not part of the
    /// crash-recovery manifest (the cache is process-local and
    /// rebuilds on first use after recovery).
    pub lower_hits: u64,
    /// Lowered-program cache misses (actual lowerings) charged while
    /// this session's frames ran. Like [`SessionStats::lower_hits`],
    /// transient host-side accounting.
    pub lower_misses: u64,
    /// Paths of flight-recorder dumps written for this session, in the
    /// order they were written. Not part of the crash-recovery
    /// manifest: dumps are incident artifacts, rediscovered from disk.
    pub flight_dumps: Vec<String>,
}

impl SessionStats {
    /// Latency percentile over the completed frames (`p` in `0..=100`;
    /// nearest-rank). `None` before the first completion.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if self.latencies_cycles.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_cycles.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Deadline-miss rate over completed frames (0 when none ran).
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.deadline_misses as f64 / self.completed as f64
    }

    /// Shed rate over submitted frames (0 when none were offered).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }
}

/// The record one [`crate::FleetScheduler::step`] returns: which
/// session ran, what the tracker produced, and what it cost in fleet
/// virtual time.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Session the frame belonged to.
    pub session: SessionId,
    /// The tracker's frame result (pose, state, rung it ran at).
    pub result: FrameResult,
    /// Submission → completion, in pool cycles (queue wait included).
    pub latency_cycles: u64,
    /// Submission → start of execution, in pool cycles.
    pub queue_cycles: u64,
    /// Whether the frame finished past the session's deadline.
    pub missed_deadline: bool,
    /// Shed-ladder rung the session is pinned to for its *next* frame.
    pub shed_rung: DegradeRung,
}

/// Typed serving errors.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the frame: the session's queue is at
    /// capacity. The frame is counted as shed.
    QueueFull {
        /// The session whose queue was full.
        session: SessionId,
        /// Its configured capacity.
        capacity: usize,
    },
    /// The session id has not been registered.
    UnknownSession(SessionId),
    /// Restoring an evicted session from its checkpoint bytes failed.
    Restore(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { session, capacity } => write!(
                f,
                "session {} queue full (capacity {capacity}): frame shed",
                session.0
            ),
            ServeError::UnknownSession(s) => write!(f, "unknown session {}", s.0),
            ServeError::Restore(e) => write!(f, "session restore failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Restore(e)
    }
}
