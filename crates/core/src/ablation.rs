//! Quantization ablations (experiment E10): the paper's §3.3/§3.4
//! design-choice evidence.
//!
//! * Feature quantization sweep: 8-bit features give "completely fault
//!   results", 16-bit Q4.12 stays below one pixel of warp error.
//! * Hessian accumulator width: 16-bit saturates and breaks the 6x6
//!   solve; 32-bit Q29.3 matches float.

use crate::feature::Feature;
use crate::hessian::QNormalEquations;
use crate::quant::{QFeature, QPose};
use crate::warp::{project_q, warp_float};
use pimvo_vomath::{solve_sym6, NormalEquations, Pinhole, SE3};

/// Result of one feature-quantization configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpErrorStats {
    /// Total bit width of the feature coordinates.
    pub bits: u32,
    /// Fractional bits.
    pub frac: u32,
    /// Maximum warp error versus float, pixels.
    pub max_err_px: f64,
    /// Mean warp error, pixels.
    pub mean_err_px: f64,
    /// Features evaluated.
    pub samples: usize,
}

/// Sweeps the feature quantization width and measures warp error
/// against the float reference over a grid of features and a typical
/// inter-frame pose.
pub fn warp_error_sweep(cam: &Pinhole, pose: &SE3, configs: &[(u32, u32)]) -> Vec<WarpErrorStats> {
    let qpose = QPose::quantize(pose);
    let mut features = Vec::new();
    for i in 0..600 {
        let u = 8.0 + (i % 30) as f64 * 10.3;
        let v = 8.0 + (i / 30) as f64 * 11.4;
        let d = 0.7 + (i % 10) as f64 * 0.6;
        let (a, b, c) = cam.inverse_depth_coords(u, v, d);
        features.push(Feature {
            u,
            v,
            depth: d,
            a,
            b,
            c,
        });
    }
    configs
        .iter()
        .map(|&(bits, frac)| {
            let mut max_err: f64 = 0.0;
            let mut sum_err = 0.0;
            let mut n = 0usize;
            for f in &features {
                let Some((uf, vf)) = warp_float(f, pose, cam) else {
                    continue;
                };
                let q = QFeature::quantize_with(f, frac, bits);
                let Some(w) = project_q(&q, &qpose, cam) else {
                    continue;
                };
                let uq = w.u_raw as f64 / 64.0;
                let vq = w.v_raw as f64 / 64.0;
                let e = ((uq - uf).powi(2) + (vq - vf).powi(2)).sqrt();
                max_err = max_err.max(e);
                sum_err += e;
                n += 1;
            }
            WarpErrorStats {
                bits,
                frac,
                max_err_px: max_err,
                mean_err_px: if n > 0 { sum_err / n as f64 } else { f64::NAN },
                samples: n,
            }
        })
        .collect()
}

/// Result of one Hessian-width configuration.
#[derive(Debug, Clone)]
pub struct HessianAblation {
    /// Accumulator width in bits.
    pub bits: u32,
    /// Whether the damped 6x6 solve succeeded.
    pub solve_ok: bool,
    /// Relative error of the solved update versus the float solution
    /// (NaN when the solve failed).
    pub update_rel_err: f64,
    /// Fraction of Hessian entries that hit the saturation bound.
    pub saturated_share: f64,
}

/// Accumulates a realistic feature load into quantized normal equations
/// at the given accumulator width and compares the solved LM update
/// against the float solution (§3.4: 32-bit works, 16-bit fails).
pub fn hessian_width_ablation(widths: &[u32]) -> Vec<HessianAblation> {
    // synthetic but realistic Jacobian rows: f·I scale gradients,
    // several thousand features
    let mut rows: Vec<[i64; 6]> = Vec::new();
    let mut residuals: Vec<i64> = Vec::new();
    for i in 0..4000usize {
        let ang = i as f64 * 0.37;
        let gu = (ang.sin() * 250.0 * 4.0) as i64; // Q14.2 raw
        let gv = (ang.cos() * 250.0 * 4.0) as i64;
        let xh = ((i % 17) as f64 / 17.0 - 0.5) * 1.2;
        let yh = ((i % 13) as f64 / 13.0 - 0.5) * 0.9;
        let s = (xh * gu as f64 + yh * gv as f64) as i64;
        rows.push([
            gu / 2,
            gv / 2,
            -s / 2,
            -((yh * s as f64) as i64 + gv),
            (xh * s as f64) as i64 + gu,
            ((xh * gv as f64) - (yh * gu as f64)) as i64,
        ]);
        residuals.push(((i % 23) as i64 - 4) * 16); // Q12.4
    }
    // float reference
    let mut eq_f = NormalEquations::zero();
    for (j, &r) in rows.iter().zip(&residuals) {
        let jf: [f64; 6] = std::array::from_fn(|k| j[k] as f64 / 4.0);
        eq_f.accumulate(&jf, r as f64 / 16.0, 1.0);
    }
    let mut damped_f = eq_f.h;
    for (i, row) in damped_f.iter_mut().enumerate() {
        row[i] *= 1.001;
    }
    let x_float = solve_sym6(&damped_f, &eq_f.b).expect("float solve");

    widths
        .iter()
        .map(|&bits| {
            let mut eq = QNormalEquations::zero_with(3, bits);
            for (j, &r) in rows.iter().zip(&residuals) {
                eq.accumulate(j, r);
            }
            let bound = (1i64 << (bits - 1)) - 1;
            let saturated =
                eq.h.iter()
                    .chain(eq.b.iter())
                    .filter(|&&v| v.abs() >= bound)
                    .count();
            let saturated_share = saturated as f64 / 27.0;
            let f = eq.to_normal_equations();
            let mut damped = f.h;
            for (i, row) in damped.iter_mut().enumerate() {
                row[i] *= 1.001;
                // fully saturated rows make the system singular; the
                // damping mirrors the tracker's LM
            }
            match solve_sym6(&damped, &f.b) {
                Ok(x) => {
                    let num: f64 = x
                        .iter()
                        .zip(&x_float)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    let den: f64 = x_float.iter().map(|v| v * v).sum::<f64>().sqrt();
                    HessianAblation {
                        bits,
                        solve_ok: true,
                        update_rel_err: num / den.max(1e-12),
                        saturated_share,
                    }
                }
                Err(_) => HessianAblation {
                    bits,
                    solve_ok: false,
                    update_rel_err: f64::NAN,
                    saturated_share,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bit_features_fine_eight_bit_faulty() {
        let cam = Pinhole::qvga();
        let pose = SE3::exp(&[0.05, -0.02, 0.03, 0.02, -0.01, 0.015]);
        let sweep = warp_error_sweep(&cam, &pose, &[(16, 12), (8, 4)]);
        let q16 = &sweep[0];
        let q8 = &sweep[1];
        assert!(q16.max_err_px < 1.0, "Q4.12 err {}", q16.max_err_px);
        assert!(q8.max_err_px > 5.0, "Q4.4 err {}", q8.max_err_px);
        assert!(q16.samples > 400);
    }

    #[test]
    fn hessian_32_bit_ok_16_bit_broken() {
        let results = hessian_width_ablation(&[32, 16]);
        let w32 = &results[0];
        let w16 = &results[1];
        assert!(w32.solve_ok);
        assert!(
            w32.update_rel_err < 0.05,
            "32-bit update error {}",
            w32.update_rel_err
        );
        assert!(w32.saturated_share == 0.0);
        // 16-bit: massive saturation; either the solve fails or the
        // update is garbage
        assert!(w16.saturated_share > 0.5, "{}", w16.saturated_share);
        assert!(
            !w16.solve_ok || w16.update_rel_err > 0.5,
            "16-bit should be broken: {w16:?}"
        );
    }
}
