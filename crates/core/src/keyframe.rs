//! Keyframe state: edge mask, distance transform, gradient maps, and
//! their quantized forms for the PIM backend.

use crate::quant::QKeyframe;
use pimvo_kernels::GrayImage;
use pimvo_mcu::KeyframeTables;
use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};

/// A keyframe with its pre-computed lookup tables (Fig. 1-a: the
/// distance-transform map and its gradient are built once per keyframe
/// so per-iteration residuals and Jacobian terms are lookups).
#[derive(Debug, Clone)]
pub struct Keyframe {
    /// Index of the frame this keyframe was built from.
    pub frame_index: usize,
    /// World-from-keyframe pose (estimated at promotion time).
    pub pose_wk: SE3,
    /// Binary edge mask of the keyframe.
    pub edge_mask: GrayImage,
    /// Float lookup tables (baseline backend).
    pub tables: KeyframeTables,
    /// Quantized lookup tables (PIM backend).
    pub q_tables: QKeyframe,
}

impl Keyframe {
    /// Builds a keyframe from an edge mask: computes the distance
    /// transform, its gradients and the quantized tables.
    pub fn build(frame_index: usize, pose_wk: SE3, edge_mask: GrayImage, cam: &Pinhole) -> Self {
        let dt = distance_transform(edge_mask.pixels(), edge_mask.width(), edge_mask.height());
        let (grad_x, grad_y) = gradient_maps(&dt);
        let tables = KeyframeTables { dt, grad_x, grad_y };
        let q_tables = QKeyframe::quantize(&tables, cam);
        Keyframe {
            frame_index,
            pose_wk,
            edge_mask,
            tables,
            q_tables,
        }
    }

    /// Number of edge pixels in the keyframe.
    pub fn edge_count(&self) -> usize {
        self.edge_mask.pixels().iter().filter(|&&p| p != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_tables() {
        let cam = Pinhole::qvga();
        let mut mask = GrayImage::new(64, 48);
        for y in 5..43 {
            mask.set(30, y, 255);
        }
        let kf = Keyframe::build(7, SE3::IDENTITY, mask, &cam);
        assert_eq!(kf.frame_index, 7);
        assert_eq!(kf.edge_count(), 38);
        // DT zero on the edge, grows away from it
        assert_eq!(kf.tables.dt.get(30, 20), 0.0);
        assert!(kf.tables.dt.get(35, 20) > 4.0);
        // quantized tables agree with the float ones
        let q = &kf.q_tables;
        assert_eq!(q.dt[(20 * 64 + 30) as usize], 0);
        assert!(q.dt[(20 * 64 + 35) as usize] >= 4 << 4);
    }
}
