//! Tracker backends: the MCU baseline (float math, PicoVO-class cost
//! model) and the PIM accelerator (quantized math, cycle/energy-accurate
//! simulation).

use crate::feature::Feature;
use crate::hessian::QNormalEquations;
use crate::jacobian::jacobian_q;
use crate::keyframe::Keyframe;
use crate::pim_exec::{self, BatchOptions, BatchRunner, BATCH};
use crate::quant::{Interp, QFeature, QKeyframe, QPose};
use crate::warp::project_q;
use pimvo_kernels::{pim_pool, EdgeConfig, EdgeMaps, GrayImage};
use pimvo_mcu::{CostCounter, FloatFeature};
use pimvo_pim::{EnergyBreakdown, ExecStats, MemAccessBreakdown, PimArrayPool, PimMachine};
use pimvo_telemetry::Telemetry;
use pimvo_vomath::{NormalEquations, Pinhole, SE3};

/// Which backend drives the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// PicoVO-class baseline: `f64` math, MCU cost model.
    Float,
    /// Quantized pipeline on the simulated SRAM-PIM.
    Pim,
}

/// Cost summary a backend accumulates while tracking.
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// Cycles spent in edge detection.
    pub edge_cycles: u64,
    /// Cycles spent in pose-estimation linearizations.
    pub lm_cycles: u64,
    /// Number of linearizations performed.
    pub lm_iterations: u64,
    /// Frames processed.
    pub frames: u64,
    /// Total energy, mJ.
    pub energy_mj: f64,
    /// PIM execution statistics (PIM backend only).
    pub pim: Option<ExecStats>,
}

impl BackendStats {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.edge_cycles + self.lm_cycles
    }

    /// Energy decomposition by PIM component, if this is a PIM backend.
    pub fn pim_energy(&self, cost: &pimvo_pim::CostModel) -> Option<EnergyBreakdown> {
        self.pim.as_ref().map(|s| s.energy(cost))
    }

    /// Memory-access decomposition, if this is a PIM backend.
    pub fn pim_mem_accesses(&self) -> Option<MemAccessBreakdown> {
        self.pim.as_ref().map(|s| s.mem_accesses())
    }
}

/// A tracker backend: edge detection plus one LM linearization.
pub trait TrackerBackend {
    /// Detects edges on the input frame, charging the backend's cost
    /// model.
    fn detect_edges(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps;

    /// Edge detection with the NMS refinement pass skipped — the
    /// deadline supervisor's [`crate::DegradeRung::SkipNmsRefinement`]
    /// rung. The mask is the thresholded HPF response (`H > th2`, border
    /// cleared): a superset of the refined mask at LPF + HPF cost only.
    /// The default falls back to full detection, so backends without a
    /// cheap path stay correct.
    fn detect_edges_fast(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
        self.detect_edges(img, cfg)
    }

    /// Downsamples an image by 2 (pyramid construction), charging the
    /// backend's cost model.
    fn downsample(&mut self, img: &GrayImage) -> GrayImage;

    /// Evaluates the normal equations of the warp residuals at `pose`
    /// (current-frame → keyframe).
    fn linearize(
        &mut self,
        features: &[Feature],
        keyframe: &Keyframe,
        cam: &Pinhole,
        pose: &SE3,
    ) -> NormalEquations;

    /// Cost statistics so far.
    fn stats(&self) -> BackendStats;

    /// Resets the cost statistics.
    fn reset_stats(&mut self);

    /// Fault/quarantine health report of the backing array pool, for
    /// backends that have one (`None` on the MCU baseline).
    fn pool_health(&self) -> Option<pimvo_pim::PoolHealth> {
        None
    }

    /// Exclusive access to the backing array pool for backends that
    /// have one (`None` on the MCU baseline). Checkpoint restore uses
    /// it to re-import the quarantine set.
    fn pool_mut(&mut self) -> Option<&mut PimArrayPool> {
        None
    }

    /// Attaches a telemetry handle. Backends with an array pool forward
    /// it so pool phases record spans and recovery events; the default
    /// implementation (MCU baseline) ignores it.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Publishes backend health as telemetry gauges (pool health for
    /// PIM backends). Default: no-op.
    fn export_health_telemetry(&self) {}
}

/// Thresholded-HPF edge mask (`H > th2`, border cleared) — the skip-NMS
/// degraded mask both backends share.
fn threshold_hpf_mask(hpf: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let data = hpf
        .pixels()
        .iter()
        .map(|&p| if p > cfg.th2 { 255 } else { 0 })
        .collect();
    let mut mask = GrayImage::from_raw(hpf.width(), hpf.height(), data);
    mask.clear_border(cfg.border);
    mask
}

/// The PicoVO-class baseline backend.
#[derive(Debug, Default)]
pub struct FloatBackend {
    counter: CostCounter,
    edge_cycles: u64,
    lm_cycles: u64,
    lm_iterations: u64,
    frames: u64,
}

impl FloatBackend {
    /// Creates the baseline backend with the Cortex-M7 cost table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrackerBackend for FloatBackend {
    fn detect_edges(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
        let before = self.counter.cycles();
        let maps = pimvo_mcu::edge_detect_counted(img, cfg, &mut self.counter);
        self.edge_cycles += self.counter.cycles() - before;
        self.frames += 1;
        maps
    }

    fn detect_edges_fast(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
        let before = self.counter.cycles();
        let lpf_map = pimvo_kernels::scalar::lpf(img);
        let hpf_map = pimvo_kernels::scalar::hpf(&lpf_map);
        let mask = threshold_hpf_mask(&hpf_map, cfg);
        // the LPF and HPF charges mirror `pimvo_mcu::edge_detect_counted`;
        // NMS is replaced by a 1-load compare/select threshold pass
        let groups = ((img.width() as u64) / 4) * (img.height() as u64);
        for _pass in 0..2 {
            self.counter.load(3 * groups);
            self.counter.alu(2 * groups);
            self.counter.store(groups);
            self.counter.branch(groups / 4);
        }
        self.counter.load(6 * groups);
        self.counter.alu((4 * 2 + 3) * groups);
        self.counter.store(groups);
        self.counter.branch(groups / 4);
        self.counter.load(groups);
        self.counter.alu(2 * groups);
        self.counter.store(groups);
        self.counter.branch(groups / 4);
        self.counter.call(3 * img.height() as u64);
        self.edge_cycles += self.counter.cycles() - before;
        self.frames += 1;
        EdgeMaps {
            lpf: lpf_map,
            hpf: hpf_map,
            mask,
        }
    }

    fn downsample(&mut self, img: &GrayImage) -> GrayImage {
        // per 4-pixel SIMD group: 2 row loads, 2 averaging ops, 1 store
        let before = self.counter.cycles();
        let groups = (img.width() as u64 / 4) * (img.height() as u64 / 2);
        self.counter.load(2 * groups);
        self.counter.alu(2 * groups);
        self.counter.store(groups / 2);
        self.edge_cycles += self.counter.cycles() - before;
        pimvo_kernels::scalar::downsample2x(img)
    }

    fn linearize(
        &mut self,
        features: &[Feature],
        keyframe: &Keyframe,
        cam: &Pinhole,
        pose: &SE3,
    ) -> NormalEquations {
        let before = self.counter.cycles();
        let floats: Vec<FloatFeature> = features
            .iter()
            .map(|f| FloatFeature {
                a: f.a,
                b: f.b,
                c: f.c,
            })
            .collect();
        let eq =
            pimvo_mcu::linearize_counted(&floats, &keyframe.tables, cam, pose, &mut self.counter);
        self.lm_cycles += self.counter.cycles() - before;
        self.lm_iterations += 1;
        eq
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            edge_cycles: self.edge_cycles,
            lm_cycles: self.lm_cycles,
            lm_iterations: self.lm_iterations,
            frames: self.frames,
            energy_mj: self.counter.energy_mj(),
            pim: None,
        }
    }

    fn reset_stats(&mut self) {
        self.counter.reset();
        self.edge_cycles = 0;
        self.lm_cycles = 0;
        self.lm_iterations = 0;
        self.frames = 0;
    }
}

/// The PIM-accelerated backend.
///
/// Edge detection executes on the simulated array pool for real
/// ([`pimvo_kernels::pim_pool`] shards image strips across the arrays).
/// Pose estimation evaluates the quantized pipeline with the fast
/// scalar path (bit-identical to the machine execution —
/// property-tested in [`crate::pim_exec`]) and charges cycles/energy
/// from a machine-traced calibration batch scaled by the batch count,
/// which is exact because the instruction sequence is
/// data-independent. With a multi-array pool the wall-clock charge per
/// linearization drops to `ceil(batches / arrays)` barrier sections of
/// one batch cost plus the inter-array sync overhead, while the summed
/// energy stays that of all batches.
pub struct PimBackend {
    runner: BatchRunner,
    /// Per-batch calibration trace (lazy).
    batch_trace: Option<ExecStats>,
    edge_cycles: u64,
    lm_cycles: u64,
    lm_iterations: u64,
    frames: u64,
    /// Extra stats accumulated via calibration scaling.
    scaled: ExecStats,
}

impl PimBackend {
    /// Creates the PIM backend with a single 6-bank QVGA array.
    pub fn new() -> Self {
        Self::with_options(BatchOptions::default())
    }

    /// Creates the backend with an explicit residual-interpolation
    /// mode (the lookup ablation).
    pub fn with_interp(interp: Interp) -> Self {
        Self::with_options(BatchOptions {
            interp,
            ..Default::default()
        })
    }

    /// Creates the backend with a pool of `n` arrays: edge-detection
    /// strips and LM feature batches are sharded across them.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_pool(n: usize) -> Self {
        Self::with_options(BatchOptions {
            pool: n,
            ..Default::default()
        })
    }

    /// Creates the backend from full [`BatchOptions`].
    ///
    /// # Panics
    ///
    /// Panics if `options.pool` is zero.
    pub fn with_options(options: BatchOptions) -> Self {
        PimBackend {
            runner: BatchRunner::new(options),
            batch_trace: None,
            edge_cycles: 0,
            lm_cycles: 0,
            lm_iterations: 0,
            frames: 0,
            scaled: ExecStats::new(),
        }
    }

    /// Creates the backend with arrays stamped from an explicit machine
    /// builder — the way to attach a [`pimvo_pim::FaultModel`] /
    /// [`pimvo_pim::Protection`] configuration to every array.
    ///
    /// # Panics
    ///
    /// Panics if `options.pool` is zero.
    pub fn from_builder(builder: &pimvo_pim::PimMachineBuilder, options: BatchOptions) -> Self {
        PimBackend {
            runner: BatchRunner::from_builder(builder, options),
            batch_trace: None,
            edge_cycles: 0,
            lm_cycles: 0,
            lm_iterations: 0,
            frames: 0,
            scaled: ExecStats::new(),
        }
    }

    /// Access to the first underlying machine (stats inspection).
    pub fn machine(&self) -> &PimMachine {
        self.runner.pool().array(0)
    }

    /// Access to the underlying array pool.
    pub fn pool(&self) -> &PimArrayPool {
        self.runner.pool()
    }

    /// Exclusive access to the underlying array pool (fault status
    /// reset, retry-policy configuration, manual quarantine).
    pub fn pool_mut(&mut self) -> &mut PimArrayPool {
        self.runner.pool_mut()
    }

    fn interp(&self) -> Interp {
        self.runner.options().interp
    }

    /// Traces one calibration batch to learn the per-batch cost.
    fn batch_cost(&mut self, kf: &QKeyframe, pose: &QPose, cam: &Pinhole) -> ExecStats {
        if let Some(t) = &self.batch_trace {
            return t.clone();
        }
        let interp = self.interp();
        let base_row = self.runner.base_row();
        // the probe lowers through the pool's shared memo table, like
        // the real batches it stands in for
        let cache = self.runner.pool().lowered_cache().clone();
        let m = self.runner.pool_mut().array_mut(0);
        let before = m.stats().clone();
        // dummy features: the op sequence (and therefore the cost) is
        // data-independent
        let feats = vec![
            QFeature {
                a: 100,
                b: -80,
                c: 2048,
                frac: 12,
            };
            BATCH
        ];
        // isolate the probe: its synchronous stats retract exactly
        // below, while residue on a DMA channel's engine clock / health
        // counters or in an op-trace lane (records whose cycles the
        // retracted wall never pays) could not be rewound
        let _ = m.with_probe_isolation(|m| {
            pim_exec::exec_batch(
                m,
                base_row,
                &feats,
                pose,
                kf,
                cam,
                interp,
                pim_exec::BatchMapping::Opt,
                &cache,
            )
        });
        // try_since: a restored checkpoint may have reset the machine's
        // counters below the captured baseline; fall back to the
        // absolute stats rather than panicking mid-calibration
        let delta = m
            .stats()
            .try_since(&before)
            .unwrap_or_else(|| m.stats().clone());
        // the calibration run itself should not count toward the
        // workload totals
        m.retract_stats(&delta);
        self.batch_trace = Some(delta.clone());
        delta
    }
}

impl Default for PimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl TrackerBackend for PimBackend {
    fn detect_edges(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
        let before = self.runner.pool().wall_cycles();
        let maps = pim_pool::edge_detect(self.runner.pool_mut(), img, cfg);
        self.edge_cycles += self.runner.pool().wall_cycles() - before;
        self.frames += 1;
        maps
    }

    fn detect_edges_fast(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
        let before = self.runner.pool().wall_cycles();
        let lpf_map = pim_pool::lpf(self.runner.pool_mut(), img);
        let hpf_map = pim_pool::hpf(self.runner.pool_mut(), &lpf_map);
        self.edge_cycles += self.runner.pool().wall_cycles() - before;
        self.frames += 1;
        // the threshold runs host-side (a byte compare is not a PIM op)
        // and is negligible next to the array phases; it charges nothing
        let mask = threshold_hpf_mask(&hpf_map, cfg);
        EdgeMaps {
            lpf: lpf_map,
            hpf: hpf_map,
            mask,
        }
    }

    fn downsample(&mut self, img: &GrayImage) -> GrayImage {
        let before = self.runner.pool().wall_cycles();
        let out = pim_pool::downsample2x(self.runner.pool_mut(), img);
        self.edge_cycles += self.runner.pool().wall_cycles() - before;
        out
    }

    fn linearize(
        &mut self,
        features: &[Feature],
        keyframe: &Keyframe,
        cam: &Pinhole,
        pose: &SE3,
    ) -> NormalEquations {
        let qpose = QPose::quantize(pose);
        let qkf = &keyframe.q_tables;

        if self.runner.options().on_machine {
            // real machine execution: faults (if any) corrupt the
            // normal equations, recovery runs at the pool layer
            let qfeats: Vec<QFeature> = features.iter().map(QFeature::quantize).collect();
            let wall_before = self.runner.pool().wall_cycles();
            match self.runner.submit(&qfeats, &qpose, qkf, cam) {
                Ok(outs) => {
                    let mut eq = QNormalEquations::zero();
                    for out in &outs {
                        pim_exec::fold_batch(&mut eq, out);
                    }
                    self.lm_cycles += self.runner.pool().wall_cycles() - wall_before;
                    self.lm_iterations += 1;
                    return eq.to_normal_equations();
                }
                Err(_) => {
                    // every array quarantined: degrade to the scalar
                    // path below so tracking can continue host-side
                    self.lm_cycles += self.runner.pool().wall_cycles() - wall_before;
                }
            }
        }

        // fast path: scalar-quantized evaluation, identical values to
        // the machine execution
        let mut eq = QNormalEquations::zero();
        let mut valid = 0usize;
        for f in features {
            let qf = QFeature::quantize(f);
            let Some(w) = project_q(&qf, &qpose, cam) else {
                continue;
            };
            let Some((r, gu, gv)) = qkf.lookup_with(w.u_raw, w.v_raw, self.interp()) else {
                continue;
            };
            let j = jacobian_q(w.qx, w.qy, w.iz_real, gu as i64, gv as i64);
            eq.accumulate(&j, r);
            valid += 1;
        }
        let _ = valid;

        // cost accounting: calibrated per-batch trace x batch count.
        // Energy / op totals cover every batch; the wall-clock charge is
        // one batch cost per barrier section of `pool` parallel batches
        // (plus the inter-array sync when the pool is sharded).
        let trace = self.batch_cost(qkf, &qpose, cam);
        let batches = features.len().div_ceil(BATCH) as u64;
        let n = self.runner.pool().len() as u64;
        let sections = batches.div_ceil(n);
        let sync = if n > 1 {
            self.runner.pool().sync_cycles()
        } else {
            0
        };
        self.lm_cycles += sections * (trace.cycles + sync);
        self.scaled.merge(&trace.scaled(batches));
        self.lm_iterations += 1;

        eq.to_normal_equations()
    }

    fn stats(&self) -> BackendStats {
        let mut pim = self.runner.pool().merged_stats();
        pim.merge(&self.scaled);
        let energy = pim.energy(self.machine().cost_model());
        BackendStats {
            edge_cycles: self.edge_cycles,
            lm_cycles: self.lm_cycles,
            lm_iterations: self.lm_iterations,
            frames: self.frames,
            energy_mj: energy.total_mj(),
            pim: Some(pim),
        }
    }

    fn reset_stats(&mut self) {
        self.runner.pool_mut().reset_stats();
        self.scaled = ExecStats::new();
        self.edge_cycles = 0;
        self.lm_cycles = 0;
        self.lm_iterations = 0;
        self.frames = 0;
    }

    fn pool_health(&self) -> Option<pimvo_pim::PoolHealth> {
        Some(self.runner.pool().health())
    }

    fn pool_mut(&mut self) -> Option<&mut PimArrayPool> {
        Some(self.runner.pool_mut())
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.runner.pool_mut().set_telemetry(telemetry);
    }

    fn export_health_telemetry(&self) {
        self.runner.pool().export_health_telemetry();
    }
}

impl std::fmt::Debug for PimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimBackend")
            .field("arrays", &self.runner.pool().len())
            .field("edge_cycles", &self.edge_cycles)
            .field("lm_cycles", &self.lm_cycles)
            .field("calibrated", &self.batch_trace.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_kernels::DepthImage;
    use pimvo_vomath::SE3;

    fn synthetic_frame() -> (GrayImage, DepthImage) {
        let gray = GrayImage::from_fn(320, 240, |x, y| {
            ((x * 17 + y * 23).wrapping_mul(2654435761) >> 12) as u8
        });
        let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
        (gray, depth)
    }

    fn keyframe_from(maps: &EdgeMaps) -> Keyframe {
        Keyframe::build(0, SE3::IDENTITY, maps.mask.clone(), &Pinhole::qvga())
    }

    #[test]
    fn float_backend_counts_cycles() {
        let (gray, depth) = synthetic_frame();
        let cam = Pinhole::qvga();
        let cfg = EdgeConfig::default();
        let mut be = FloatBackend::new();
        let maps = be.detect_edges(&gray, &cfg);
        let kf = keyframe_from(&maps);
        let feats = crate::feature::extract_features(&maps.mask, &depth, &cam, 4000, 0.3, 8.0);
        assert!(!feats.is_empty());
        let eq = be.linearize(&feats, &kf, &cam, &SE3::IDENTITY);
        assert!(eq.count > 0);
        let st = be.stats();
        assert!(st.edge_cycles > 500_000, "{}", st.edge_cycles);
        assert!(st.lm_cycles > 10_000);
        assert!(st.energy_mj > 0.0);
        assert!(st.pim.is_none());
    }

    #[test]
    fn pim_backend_counts_cycles_and_matches_float_roughly() {
        let (gray, depth) = synthetic_frame();
        let cam = Pinhole::qvga();
        let cfg = EdgeConfig::default();

        let mut fb = FloatBackend::new();
        let mut pb = PimBackend::new();
        let maps_f = fb.detect_edges(&gray, &cfg);
        let maps_p = pb.detect_edges(&gray, &cfg);
        assert_eq!(maps_f.mask, maps_p.mask, "edge maps must be identical");

        let kf = keyframe_from(&maps_f);
        let feats = crate::feature::extract_features(&maps_f.mask, &depth, &cam, 2000, 0.3, 8.0);
        let pose = SE3::exp(&[0.01, -0.005, 0.008, 0.002, -0.004, 0.001]);
        let eq_f = fb.linearize(&feats, &kf, &cam, &pose);
        let eq_p = pb.linearize(&feats, &kf, &cam, &pose);

        // the quantized normal equations approximate the float ones
        assert!(eq_p.count > eq_f.count / 2);
        let rel = (eq_p.cost - eq_f.cost).abs() / eq_f.cost.max(1e-9);
        assert!(
            rel < 0.35,
            "cost mismatch {rel}: {} vs {}",
            eq_p.cost,
            eq_f.cost
        );

        // PIM is much faster than the MCU on both stages
        let (sf, sp) = (fb.stats(), pb.stats());
        assert!(sf.edge_cycles > 20 * sp.edge_cycles, "edge speedup");
        assert!(sf.lm_cycles > 3 * sp.lm_cycles, "LM speedup");
        assert!(sp.pim.is_some());
    }

    #[test]
    fn pooled_backend_matches_single_array_and_is_faster() {
        let (gray, depth) = synthetic_frame();
        let cam = Pinhole::qvga();
        let cfg = EdgeConfig::default();

        let mut p1 = PimBackend::new();
        let mut p4 = PimBackend::with_pool(4);
        let maps1 = p1.detect_edges(&gray, &cfg);
        let maps4 = p4.detect_edges(&gray, &cfg);
        assert_eq!(maps1.mask, maps4.mask, "pooling must not change the maps");
        assert_eq!(maps1.lpf, maps4.lpf);
        assert_eq!(maps1.hpf, maps4.hpf);

        let kf = keyframe_from(&maps1);
        let feats = crate::feature::extract_features(&maps1.mask, &depth, &cam, 4000, 0.3, 8.0);
        let pose = SE3::exp(&[0.01, -0.005, 0.008, 0.002, -0.004, 0.001]);
        let eq1 = p1.linearize(&feats, &kf, &cam, &pose);
        let eq4 = p4.linearize(&feats, &kf, &cam, &pose);
        assert_eq!(eq1.count, eq4.count);
        assert_eq!(eq1.cost, eq4.cost);

        let (s1, s4) = (p1.stats(), p4.stats());
        assert!(
            s4.edge_cycles < s1.edge_cycles,
            "edge wall cycles must shrink: {} vs {}",
            s4.edge_cycles,
            s1.edge_cycles
        );
        assert!(
            s4.lm_cycles < s1.lm_cycles,
            "LM wall cycles must shrink: {} vs {}",
            s4.lm_cycles,
            s1.lm_cycles
        );
    }

    #[test]
    fn fast_edges_superset_of_refined_and_cheaper() {
        let (gray, _) = synthetic_frame();
        let cfg = EdgeConfig::default();

        let mut full_be = PimBackend::new();
        let mut fast_be = PimBackend::new();
        let full = full_be.detect_edges(&gray, &cfg);
        let fast = fast_be.detect_edges_fast(&gray, &cfg);
        // NMS only *removes* pixels from the thresholded-HPF response
        for (m, f) in full.mask.pixels().iter().zip(fast.mask.pixels()) {
            assert!(*m == 0 || *f == 255, "refined edge missing from fast mask");
        }
        assert!(
            fast_be.stats().edge_cycles < full_be.stats().edge_cycles,
            "{} vs {}",
            fast_be.stats().edge_cycles,
            full_be.stats().edge_cycles
        );

        let mut ffull = FloatBackend::new();
        let mut ffast = FloatBackend::new();
        let full_f = ffull.detect_edges(&gray, &cfg);
        let fast_f = ffast.detect_edges_fast(&gray, &cfg);
        // the float fast path produces the same mask as the PIM one
        assert_eq!(fast_f.mask, fast.mask);
        let _ = full_f;
        assert!(ffast.stats().edge_cycles < ffull.stats().edge_cycles);
    }

    #[test]
    fn pim_backend_lm_cost_scales_with_features() {
        let (gray, depth) = synthetic_frame();
        let cam = Pinhole::qvga();
        let cfg = EdgeConfig::default();
        let mut pb = PimBackend::new();
        let maps = pb.detect_edges(&gray, &cfg);
        let kf = keyframe_from(&maps);
        let feats = crate::feature::extract_features(&maps.mask, &depth, &cam, 4000, 0.3, 8.0);
        let n_all = feats.len();

        let c0 = pb.stats().lm_cycles;
        let _ = pb.linearize(&feats, &kf, &cam, &SE3::IDENTITY);
        let full = pb.stats().lm_cycles - c0;

        let half: Vec<Feature> = feats[..n_all / 2].to_vec();
        let c1 = pb.stats().lm_cycles;
        let _ = pb.linearize(&half, &kf, &cam, &SE3::IDENTITY);
        let half_cost = pb.stats().lm_cycles - c1;
        assert!(full > half_cost, "{full} vs {half_cost}");
        assert!(full < 2 * half_cost + full / 4);
    }
}
