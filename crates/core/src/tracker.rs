//! The EBVO tracker: edge detection → feature extraction → LM edge
//! alignment against the keyframe (Fig. 1 of the paper).

use crate::backend::{BackendKind, BackendStats, FloatBackend, PimBackend, TrackerBackend};
use crate::checkpoint::{
    self, Checkpoint, CheckpointError, KeyframeSnapshot, MapSnapshot, PoolSnapshot,
};
use crate::config::TrackerConfig;
use crate::feature::{extract_features, Feature};
use crate::keyframe::Keyframe;
use crate::mapping::EdgeMap3d;
use crate::supervisor::{BudgetConfig, BudgetStatus, DeadlineSupervisor, DegradeRung};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_telemetry::{EventKind, Severity, Telemetry, TimeDomain};
use pimvo_vomath::{LmOutcome, LmProblem, LmSolver, NormalEquations, Pinhole, SE3, SO3};
use std::path::Path;

/// Tracking quality state of the [`Tracker`] — the graceful-degradation
/// ladder:
///
/// ```text
///        good frame                 bad frame
///   Ok ───────────▶ Ok        Ok ────────────▶ Degraded
///   Degraded ──────▶ Ok       Degraded ───┬──▶ Degraded   (< N bad)
///   Lost ──────────▶ Ok                   └──▶ Lost       (≥ N bad,
///                                               re-seed at keyframe)
/// ```
///
/// A *bad* frame (diverged solve, no residual support, exploding cost —
/// see [`crate::RecoveryConfig`]) never overwrites the pose with solver
/// output: the tracker coasts on the constant-velocity / gyro motion
/// prior. After `max_bad_frames` consecutive bad frames the tracker is
/// Lost: the pose is re-seeded at the last keyframe, from which the
/// next well-supported alignment re-localizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingState {
    /// The last frame aligned with healthy support.
    #[default]
    Ok,
    /// Recent frames were rejected; pose is extrapolated from the
    /// motion prior.
    Degraded,
    /// Too many consecutive rejections; pose re-seeded at the last
    /// keyframe until alignment recovers.
    Lost,
}

/// Result of processing one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Frame index.
    pub index: usize,
    /// Estimated world-from-camera pose.
    pub pose_wc: SE3,
    /// Keyframe-relative pose (keyframe-from-camera).
    pub pose_kc: SE3,
    /// Whether this frame became a keyframe.
    pub is_keyframe: bool,
    /// Number of features extracted.
    pub features: usize,
    /// LM iterations run (0 on keyframe bootstrap).
    pub iterations: usize,
    /// Final mean squared residual (pixels²).
    pub mean_residual: f64,
    /// Tracking quality after this frame.
    pub state: TrackingState,
    /// Degradation-ladder rung the frame actually ran at (after any
    /// mid-frame escalation). Always [`DegradeRung::Full`] when the
    /// deadline supervisor is disabled.
    pub rung: DegradeRung,
}

struct AlignmentProblem<'a> {
    backend: &'a mut dyn TrackerBackend,
    features: &'a [Feature],
    keyframe: &'a Keyframe,
    camera: &'a Pinhole,
}

impl LmProblem for AlignmentProblem<'_> {
    fn build(&mut self, pose: &SE3) -> NormalEquations {
        self.backend
            .linearize(self.features, self.keyframe, self.camera, pose)
    }
}

/// The EBVO tracker. Owns a backend (baseline MCU or PIM) and the
/// keyframe state.
pub struct Tracker {
    config: TrackerConfig,
    backend: Box<dyn TrackerBackend>,
    /// Per-pyramid-level keyframes (index 0 = full resolution).
    keyframes: Option<Vec<Keyframe>>,
    /// Per-level cameras (index 0 = full resolution).
    cameras: Vec<Pinhole>,
    /// World-from-camera pose of the latest frame.
    pose_wc: SE3,
    /// Keyframe-from-camera pose of the latest frame (the LM variable).
    pose_kc: SE3,
    frame_index: usize,
    /// Semi-dense world map (when `config.build_map`).
    map: Option<EdgeMap3d>,
    /// Tracking quality state (graceful degradation).
    state: TrackingState,
    /// Consecutive bad frames seen in the current Degraded stretch.
    bad_frames: usize,
    /// Inter-frame camera motion `T_c_prev <- c_curr` of the last good
    /// alignment (the constant-velocity prior).
    motion: SE3,
    /// World-from-camera pose of the previous frame (prior anchor).
    prev_pose_wc: SE3,
    /// Telemetry handle (off by default; see [`Tracker::set_telemetry`]).
    telemetry: Telemetry,
    /// Deadline supervisor (disabled unless `config.budget` sets one).
    supervisor: DeadlineSupervisor,
}

/// Builder for [`Tracker`] sessions: collects the configuration,
/// backend choice and runtime knobs that previously required a
/// `new` + `set_telemetry` + `set_budget` + `set_frame_budget_cycles`
/// mutation sequence, and produces a fully wired tracker in one call.
/// `pimvo-serve` session specs construct their trackers through it.
///
/// A custom backend ([`TrackerBuilder::with_backend`]) takes precedence
/// over the [`BackendKind`]; [`TrackerBuilder::pim_pool`] applies only
/// when the PIM backend is built by kind.
///
/// ```
/// use pimvo_core::{BackendKind, TrackerBuilder, TrackerConfig};
///
/// let tracker = TrackerBuilder::new(TrackerConfig::default())
///     .backend(BackendKind::Float)
///     .frame_budget_cycles(Some(2_000_000))
///     .build();
/// assert_eq!(tracker.config().budget.cycles_per_frame, Some(2_000_000));
/// ```
pub struct TrackerBuilder {
    config: TrackerConfig,
    kind: BackendKind,
    custom: Option<Box<dyn TrackerBackend>>,
    pim_pool: Option<usize>,
    dma: Option<pimvo_pim::DmaConfig>,
    telemetry: Option<Telemetry>,
    budget: Option<BudgetConfig>,
    frame_budget_cycles: Option<Option<u64>>,
    lowered_cache: Option<pimvo_pim::LoweredCache>,
}

impl TrackerBuilder {
    /// Starts a builder from the estimator configuration. The default
    /// backend is [`BackendKind::Pim`] (the paper's accelerator).
    pub fn new(config: TrackerConfig) -> Self {
        TrackerBuilder {
            config,
            kind: BackendKind::Pim,
            custom: None,
            pim_pool: None,
            dma: None,
            telemetry: None,
            budget: None,
            frame_budget_cycles: None,
            lowered_cache: None,
        }
    }

    /// Shares a lowered-program memo table with the tracker's PIM
    /// pool: a fleet building many trackers against one
    /// [`pimvo_pim::LoweredCache`] handle lowers each distinct
    /// (program, level, geometry) triple exactly once across all of
    /// them — including the build-time calibration probes. Ignored by
    /// non-PIM backends.
    pub fn lowered_cache(mut self, cache: pimvo_pim::LoweredCache) -> Self {
        self.lowered_cache = Some(cache);
        self
    }

    /// Selects the backend by kind.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Uses a pre-configured backend (ablations, custom cost models).
    /// Overrides [`TrackerBuilder::backend`] and
    /// [`TrackerBuilder::pim_pool`].
    pub fn with_backend(mut self, backend: Box<dyn TrackerBackend>) -> Self {
        self.custom = Some(backend);
        self
    }

    /// Shards the PIM backend across a pool of `n` arrays (ignored for
    /// the float backend and for a custom backend).
    ///
    /// # Panics
    ///
    /// [`TrackerBuilder::build`] panics if `n` is zero.
    pub fn pim_pool(mut self, n: usize) -> Self {
        self.pim_pool = Some(n);
        self
    }

    /// Attaches modeled host↔array DMA channels to every pool array
    /// (see [`pimvo_pim::DmaConfig`]): transfers ride per-array channel
    /// engines and overlap compute instead of serializing with it.
    /// Values stay bit-identical; only the timing model changes. A
    /// runtime QoS knob like the budget — excluded from the checkpoint
    /// config hash. Ignored for the float backend and for a custom
    /// backend.
    pub fn dma(mut self, cfg: pimvo_pim::DmaConfig) -> Self {
        self.dma = Some(cfg);
        self
    }

    /// Attaches a telemetry handle (see [`Tracker::set_telemetry`]).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Replaces the per-frame budget (see [`Tracker::set_budget`]).
    pub fn budget(mut self, budget: BudgetConfig) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets only the per-frame cycle budget, keeping the rest of the
    /// budget configuration (applied after
    /// [`TrackerBuilder::budget`] if both are given).
    pub fn frame_budget_cycles(mut self, cycles: Option<u64>) -> Self {
        self.frame_budget_cycles = Some(cycles);
        self
    }

    /// Builds the tracker.
    ///
    /// # Panics
    ///
    /// Panics if `config.pyramid_levels` is outside `1..=4` or a
    /// zero-sized PIM pool was requested.
    pub fn build(self) -> Tracker {
        let backend: Box<dyn TrackerBackend> = match self.custom {
            Some(b) => b,
            None => match self.kind {
                BackendKind::Float => Box::new(FloatBackend::new()),
                BackendKind::Pim => {
                    let mut b = match self.pim_pool {
                        Some(n) => PimBackend::with_pool(n),
                        None => PimBackend::new(),
                    };
                    if self.dma.is_some() {
                        b.pool_mut().set_dma(self.dma);
                    }
                    if let Some(cache) = self.lowered_cache {
                        b.pool_mut().set_lowered_cache(cache);
                    }
                    Box::new(b)
                }
            },
        };
        let mut tracker = Tracker::with_backend(self.config, backend);
        if let Some(t) = self.telemetry {
            tracker.set_telemetry(t);
        }
        if let Some(b) = self.budget {
            tracker.set_budget(b);
        }
        if let Some(c) = self.frame_budget_cycles {
            tracker.set_frame_budget_cycles(c);
        }
        tracker
    }
}

impl std::fmt::Debug for TrackerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackerBuilder")
            .field("kind", &self.kind)
            .field("custom_backend", &self.custom.is_some())
            .field("pim_pool", &self.pim_pool)
            .finish_non_exhaustive()
    }
}

impl Tracker {
    /// Creates a tracker with the chosen backend.
    pub fn new(config: TrackerConfig, backend: BackendKind) -> Tracker {
        let backend: Box<dyn TrackerBackend> = match backend {
            BackendKind::Float => Box::new(FloatBackend::new()),
            BackendKind::Pim => Box::new(PimBackend::new()),
        };
        Self::with_backend(config, backend)
    }

    /// Creates a tracker around a pre-configured backend (ablations,
    /// custom cost models).
    pub fn with_backend(config: TrackerConfig, backend: Box<dyn TrackerBackend>) -> Tracker {
        assert!(
            (1..=4).contains(&config.pyramid_levels),
            "pyramid_levels must be 1..=4"
        );
        let mut cameras = vec![config.camera];
        for _ in 1..config.pyramid_levels {
            cameras.push(cameras.last().expect("nonempty").halved());
        }
        let map = config.build_map.then(|| EdgeMap3d::new(config.map_voxel_m));
        let supervisor = DeadlineSupervisor::new(config.budget);
        Tracker {
            config,
            backend,
            keyframes: None,
            cameras,
            pose_wc: SE3::IDENTITY,
            pose_kc: SE3::IDENTITY,
            frame_index: 0,
            map,
            state: TrackingState::Ok,
            bad_frames: 0,
            motion: SE3::IDENTITY,
            prev_pose_wc: SE3::IDENTITY,
            telemetry: Telemetry::off(),
            supervisor,
        }
    }

    /// Attaches a telemetry handle to the tracker and its backend: each
    /// frame then records wall-time and PIM-cycle spans (frame → stage;
    /// the backend's pool adds pool-phase → shard underneath), per-frame
    /// counters/gauges (features, LM iterations, residual), and
    /// state-transition events on the graceful-degradation ladder. The
    /// default handle is off and costs one branch per frame.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.backend.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (off by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current tracking quality state.
    pub fn state(&self) -> TrackingState {
        self.state
    }

    /// Tracker configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Backend cost statistics.
    pub fn stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Fault/quarantine health of the backend's array pool (`None` on
    /// backends without one, e.g. the MCU baseline).
    pub fn pool_health(&self) -> Option<pimvo_pim::PoolHealth> {
        self.backend.pool_health()
    }

    /// Mutable access to the backend's array pool (`None` on backends
    /// without one). Lets a supervisor or chaos harness quarantine
    /// arrays and swap fault models between frames.
    pub fn pool_mut(&mut self) -> Option<&mut pimvo_pim::PimArrayPool> {
        self.backend.pool_mut()
    }

    /// Current full-resolution keyframe, if any.
    pub fn keyframe(&self) -> Option<&Keyframe> {
        self.keyframes.as_ref().map(|k| &k[0])
    }

    /// The semi-dense 3D edge map (when map building is enabled).
    pub fn map(&self) -> Option<&EdgeMap3d> {
        self.map.as_ref()
    }

    /// Replaces the per-frame budget at runtime (QoS knob). Setting a
    /// disabled budget returns the tracker to the exact unsupervised
    /// code path.
    pub fn set_budget(&mut self, budget: BudgetConfig) {
        self.config.budget = budget;
        self.supervisor.set_config(budget);
    }

    /// Convenience: sets only the per-frame cycle budget, keeping the
    /// rest of the budget configuration.
    pub fn set_frame_budget_cycles(&mut self, cycles: Option<u64>) {
        let mut b = self.config.budget;
        b.cycles_per_frame = cycles;
        self.set_budget(b);
    }

    /// Point-in-time deadline-supervisor status (rung, headroom, miss
    /// counters).
    pub fn budget_status(&self) -> BudgetStatus {
        self.supervisor.status()
    }

    /// Forces the degradation ladder to `rung` before the next frame —
    /// the load-shedding hook a fleet scheduler uses to degrade a
    /// session under pool contention (see
    /// [`DeadlineSupervisor::force_rung`]). Only effective while a
    /// budget is enabled: without one the supervised path is bypassed
    /// entirely and every frame runs at [`DegradeRung::Full`].
    pub fn set_shed_rung(&mut self, rung: DegradeRung) {
        self.supervisor.force_rung(rung);
    }

    /// Snapshots the complete tracker state for kill-and-restore.
    pub fn checkpoint(&self) -> Checkpoint {
        let b = self.supervisor.status();
        Checkpoint {
            config_hash: checkpoint::config_hash(&self.config),
            frame_index: self.frame_index,
            state: self.state,
            bad_frames: self.bad_frames,
            pose_wc: self.pose_wc,
            pose_kc: self.pose_kc,
            prev_pose_wc: self.prev_pose_wc,
            motion: self.motion,
            rung: b.rung,
            deadline_misses: b.deadline_misses,
            coasted_frames: b.coasted_frames,
            keyframes: self.keyframes.as_ref().map(|kfs| KeyframeSnapshot {
                frame_index: kfs[0].frame_index,
                pose_wk: kfs[0].pose_wk,
                masks: kfs.iter().map(|k| k.edge_mask.clone()).collect(),
            }),
            map: self.map.as_ref().map(|m| MapSnapshot {
                voxel_m: m.voxel_m(),
                points: m.points().to_vec(),
            }),
            pool: self.backend.pool_health().map(|h| PoolSnapshot {
                quarantined: h.quarantined,
                retries: h.retries,
                redispatches: h.redispatches,
                dirty_accepted: h.dirty_accepted,
            }),
        }
    }

    /// Snapshots the tracker and writes it atomically to `path`
    /// (temp + rename; see [`Checkpoint::write_atomic`]).
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        self.checkpoint().write_atomic(path)?;
        self.telemetry.event(
            EventKind::CheckpointWritten,
            &[("frame", self.frame_index.to_string())],
        );
        Ok(())
    }

    /// Restores the tracker from a snapshot, resuming the sequence
    /// mid-stream: poses, keyframe tables (rebuilt deterministically
    /// from the stored edge masks), map, degradation rung and the
    /// pool's quarantine set all come back, so the restored run
    /// replays the uninterrupted run. The snapshot must have been taken
    /// under the same estimator configuration
    /// ([`CheckpointError::ConfigMismatch`] otherwise); on any error
    /// the tracker is left unchanged — fall back to re-initialization
    /// by simply continuing to feed frames.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        match self.restore_inner(ckpt) {
            Ok(()) => {
                self.telemetry.event(
                    EventKind::CheckpointRestored,
                    &[("frame", self.frame_index.to_string())],
                );
                Ok(())
            }
            Err(e) => {
                self.telemetry
                    .event(EventKind::CheckpointRejected, &[("reason", e.to_string())]);
                Err(e)
            }
        }
    }

    /// Reads a snapshot file and restores from it; rejection of a
    /// corrupt, truncated or mismatched file is a typed error and
    /// leaves the tracker unchanged.
    pub fn restore_from_file(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let ckpt = match Checkpoint::read_file(path) {
            Ok(c) => c,
            Err(e) => {
                self.telemetry
                    .event(EventKind::CheckpointRejected, &[("reason", e.to_string())]);
                return Err(e);
            }
        };
        self.restore(&ckpt)
    }

    fn restore_inner(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        let current = checkpoint::config_hash(&self.config);
        if ckpt.config_hash != current {
            return Err(CheckpointError::ConfigMismatch {
                snapshot: ckpt.config_hash,
                current,
            });
        }
        for p in [
            &ckpt.pose_wc,
            &ckpt.pose_kc,
            &ckpt.prev_pose_wc,
            &ckpt.motion,
        ] {
            if !checkpoint::pose_finite(p) {
                return Err(CheckpointError::Malformed("non-finite pose"));
            }
        }
        // validate and rebuild everything side-effect-free first, so a
        // rejected snapshot leaves the tracker untouched
        let keyframes = match &ckpt.keyframes {
            None => None,
            Some(kf) => {
                if !checkpoint::pose_finite(&kf.pose_wk) {
                    return Err(CheckpointError::Malformed("non-finite pose"));
                }
                if kf.masks.len() != self.cameras.len() {
                    return Err(CheckpointError::Malformed("pyramid level count mismatch"));
                }
                let mut kfs = Vec::with_capacity(kf.masks.len());
                for (mask, cam) in kf.masks.iter().zip(&self.cameras) {
                    if mask.width() != cam.width || mask.height() != cam.height {
                        return Err(CheckpointError::Malformed(
                            "mask dimensions do not match the camera",
                        ));
                    }
                    kfs.push(Keyframe::build(
                        kf.frame_index,
                        kf.pose_wk,
                        mask.clone(),
                        cam,
                    ));
                }
                Some(kfs)
            }
        };
        let map = if self.config.build_map {
            Some(match &ckpt.map {
                Some(m) => EdgeMap3d::from_points(m.voxel_m, m.points.clone())
                    .ok_or(CheckpointError::Malformed("invalid voxel size"))?,
                // a snapshot without map state under a map-building
                // config restarts the map empty rather than failing
                None => EdgeMap3d::new(self.config.map_voxel_m),
            })
        } else {
            None
        };
        if let (Some(snap), Some(pool)) = (&ckpt.pool, self.backend.pool_mut()) {
            let n = snap.quarantined.len();
            // probation/remap/scrub state is physical and not part of
            // the checkpoint format; import_health ignores these fields
            let health = pimvo_pim::PoolHealth {
                arrays: vec![pimvo_pim::FaultStatus::default(); n],
                quarantined: snap.quarantined.clone(),
                retries: snap.retries,
                redispatches: snap.redispatches,
                dirty_accepted: snap.dirty_accepted,
                probation: vec![0; n],
                remapped_rows: vec![0; n],
                scrubs: 0,
                rehabilitated: 0,
            };
            pool.import_health(&health)
                .map_err(|_| CheckpointError::Malformed("pool size mismatch"))?;
        }

        self.keyframes = keyframes;
        self.map = map;
        self.frame_index = ckpt.frame_index;
        self.state = ckpt.state;
        self.bad_frames = ckpt.bad_frames;
        self.pose_wc = ckpt.pose_wc;
        self.pose_kc = ckpt.pose_kc;
        self.prev_pose_wc = ckpt.prev_pose_wc;
        self.motion = ckpt.motion;
        self.supervisor
            .restore(ckpt.rung, ckpt.deadline_misses, ckpt.coasted_frames);
        Ok(())
    }

    /// Processes one RGB-D frame and returns the pose estimate.
    ///
    /// # Panics
    ///
    /// Panics if the image dimensions do not match the configured
    /// camera.
    pub fn process_frame(&mut self, gray: &GrayImage, depth: &DepthImage) -> FrameResult {
        self.process_frame_with_gyro(gray, depth, None)
    }

    /// [`Tracker::process_frame`] with an inertial rotation prediction —
    /// the first step toward the paper's future-work VIO: `gyro_delta`
    /// is the integrated body-frame rotation from the previous frame to
    /// this one (e.g. from [`integrate_gyro`] over the inter-frame
    /// window), used to warm-start the edge alignment. Translation still
    /// follows the constant-position model.
    ///
    /// [`integrate_gyro`]: https://docs.rs/pimvo-scene
    ///
    /// # Panics
    ///
    /// Panics if the image dimensions do not match the configured
    /// camera.
    pub fn process_frame_with_gyro(
        &mut self,
        gray: &GrayImage,
        depth: &DepthImage,
        gyro_delta: Option<SO3>,
    ) -> FrameResult {
        if !self.telemetry.is_enabled() {
            return self.process_inner(gray, depth, gyro_delta);
        }
        let prev_state = self.state;
        self.telemetry.set_frame(self.frame_index as u64);
        let cyc_start = self.backend.stats().total_cycles();
        let wall = self.telemetry.span("tracker", "frame");
        let result = self.process_inner(gray, depth, gyro_delta);
        drop(wall);
        let cyc_end = self.backend.stats().total_cycles();
        self.telemetry.record_span(
            TimeDomain::Cycles,
            "tracker",
            "frame",
            cyc_start,
            cyc_end - cyc_start,
            &[
                ("features", result.features.to_string()),
                ("iterations", result.iterations.to_string()),
                ("state", format!("{:?}", result.state)),
            ],
        );
        self.telemetry.counter_add("pimvo_frames_total", 1.0);
        if result.is_keyframe {
            self.telemetry.counter_add("pimvo_keyframes_total", 1.0);
        }
        self.telemetry
            .counter_add("pimvo_lm_iterations_total", result.iterations as f64);
        self.telemetry
            .gauge_set("pimvo_frame_features", result.features as f64);
        self.telemetry
            .gauge_set("pimvo_mean_residual", result.mean_residual);
        if result.state != prev_state {
            self.note_state_transition(prev_state, result.state, &result);
        }
        self.backend.export_health_telemetry();
        result
    }

    /// Records the state-transition counter and a severity-matched
    /// event when the graceful-degradation ladder moves.
    fn note_state_transition(&self, from: TrackingState, to: TrackingState, r: &FrameResult) {
        let name = |s: TrackingState| match s {
            TrackingState::Ok => "ok",
            TrackingState::Degraded => "degraded",
            TrackingState::Lost => "lost",
        };
        self.telemetry.counter_add_labeled(
            "pimvo_tracking_transitions_total",
            &[("from", name(from)), ("to", name(to))],
            1.0,
        );
        let severity = match to {
            TrackingState::Ok => Severity::Info,
            TrackingState::Degraded => Severity::Warn,
            TrackingState::Lost => Severity::Error,
        };
        self.telemetry.log(
            severity,
            "tracking state changed",
            &[
                ("from", name(from).to_string()),
                ("to", name(to).to_string()),
                ("mean_residual", format!("{}", r.mean_residual)),
                ("features", r.features.to_string()),
            ],
        );
    }

    /// Cycle-domain stage span helper: `start` is the backend's total
    /// cycle counter at stage entry.
    fn record_stage_cycles(&self, name: &str, start: u64) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let end = self.backend.stats().total_cycles();
        if end > start {
            self.telemetry.record_span(
                TimeDomain::Cycles,
                "tracker",
                name,
                start,
                end - start,
                &[],
            );
        }
    }

    /// Backend cycle counter, read only when telemetry is on.
    fn stage_cycles_start(&self) -> u64 {
        if self.telemetry.is_enabled() {
            self.backend.stats().total_cycles()
        } else {
            0
        }
    }

    fn process_inner(
        &mut self,
        gray: &GrayImage,
        depth: &DepthImage,
        gyro_delta: Option<SO3>,
    ) -> FrameResult {
        if !self.supervisor.enabled() {
            // no budget: the exact unsupervised code path, bit-identical
            // cycle/energy numbers to a build without the supervisor
            let result = self.process_core(gray, depth, gyro_delta, DegradeRung::Full, false);
            self.settle_transfers();
            return result;
        }
        let wall_start = std::time::Instant::now();
        let cyc_start = self.backend.stats().total_cycles();
        // the bootstrap frame always runs at full quality: without a
        // keyframe there is nothing to coast on
        let rung = if self.keyframes.is_some() {
            self.supervisor.begin_frame()
        } else {
            DegradeRung::Full
        };
        let result = self.process_core(gray, depth, gyro_delta, rung, true);
        self.settle_transfers();
        let spent_cycles = self
            .backend
            .stats()
            .total_cycles()
            .saturating_sub(cyc_start);
        let spent_ns = wall_start.elapsed().as_nanos() as u64;
        self.supervisor.end_frame(
            result.rung,
            spent_cycles,
            spent_ns,
            result.index,
            &self.telemetry,
        );
        result
    }

    /// Frame-end transfer settle: drains in-flight DMA descriptors and
    /// absorbs trailing host I/O (result reads after the frame's last
    /// barrier) into the pool wall clock, so per-frame timing is
    /// complete before the caller observes it. No-op on backends
    /// without an array pool.
    fn settle_transfers(&mut self) {
        if let Some(p) = self.backend.pool_mut() {
            p.dma_settle();
        }
    }

    /// Sheds the rest of the frame: the pose extrapolates on the motion
    /// prior and the alignment is skipped entirely. This is deliberate
    /// load shedding, not a tracking failure — the bad-frame counter is
    /// untouched; the state reports `Degraded` (or stays `Lost`).
    fn coast_frame(
        &mut self,
        index: usize,
        gyro_delta: Option<SO3>,
        features: usize,
        rung: DegradeRung,
    ) -> FrameResult {
        let pose_wk = self.keyframes.as_ref().expect("coast requires a keyframe")[0].pose_wk;
        let prior = match gyro_delta {
            Some(r) => SE3::new(r, self.motion.translation),
            None => self.motion,
        };
        self.pose_wc = self.prev_pose_wc.compose(&prior);
        self.pose_kc = pose_wk.inverse().compose(&self.pose_wc);
        self.prev_pose_wc = self.pose_wc;
        if self.state != TrackingState::Lost {
            self.state = TrackingState::Degraded;
        }
        FrameResult {
            index,
            pose_wc: self.pose_wc,
            pose_kc: self.pose_kc,
            is_keyframe: false,
            features,
            iterations: 0,
            mean_residual: 0.0,
            state: self.state,
            rung,
        }
    }

    fn process_core(
        &mut self,
        gray: &GrayImage,
        depth: &DepthImage,
        gyro_delta: Option<SO3>,
        mut rung: DegradeRung,
        supervised: bool,
    ) -> FrameResult {
        assert_eq!(gray.width(), self.config.camera.width, "width mismatch");
        assert_eq!(gray.height(), self.config.camera.height, "height mismatch");
        let index = self.frame_index;
        self.frame_index += 1;

        let cyc_frame = if supervised {
            self.backend.stats().total_cycles()
        } else {
            0
        };
        // scheduled coast: shed the whole frame before any work
        if rung == DegradeRung::Coast && self.keyframes.is_some() {
            return self.coast_frame(index, gyro_delta, 0, rung);
        }

        // build the image pyramid (level 0 = full resolution)
        let levels = self.config.pyramid_levels;
        let cyc = self.stage_cycles_start();
        let wall = self.telemetry.span("tracker", "pyramid");
        let mut grays = vec![gray.clone()];
        let mut depths = vec![depth.clone()];
        for l in 1..levels {
            grays.push(self.backend.downsample(&grays[l - 1]));
            depths.push(downsample_depth(&depths[l - 1]));
        }
        drop(wall);
        self.record_stage_cycles("pyramid", cyc);

        // phase boundary: once over budget, stop starting phases and
        // coast — bounding an overrun to the one phase already running
        if supervised && self.keyframes.is_some() {
            let spent = self
                .backend
                .stats()
                .total_cycles()
                .saturating_sub(cyc_frame);
            if self.supervisor.over_cycle_budget(spent) {
                rung = DegradeRung::Coast;
                return self.coast_frame(index, gyro_delta, 0, rung);
            }
        }

        // edge detection + feature extraction per level, shedding per
        // the frame's rung
        let skip_nms = rung >= DegradeRung::SkipNmsRefinement;
        let feature_budget = if rung >= DegradeRung::ReduceFeatures {
            self.config.max_features / self.supervisor.config().feature_divisor.max(1)
        } else {
            self.config.max_features
        };
        let cyc = self.stage_cycles_start();
        let wall = self.telemetry.span("tracker", "edges+features");
        let mut masks = Vec::with_capacity(levels);
        let mut features: Vec<Vec<crate::feature::Feature>> = Vec::with_capacity(levels);
        for l in 0..levels {
            let maps = if skip_nms {
                self.backend.detect_edges_fast(&grays[l], &self.config.edge)
            } else {
                self.backend.detect_edges(&grays[l], &self.config.edge)
            };
            let cap = feature_budget >> (2 * l);
            features.push(extract_features(
                &maps.mask,
                &depths[l],
                &self.cameras[l],
                cap.max(200),
                self.config.min_depth,
                self.config.max_depth,
            ));
            masks.push(maps.mask);
        }
        drop(wall);
        self.record_stage_cycles("edges+features", cyc);

        // phase boundary: edges + features done (a bootstrap frame
        // never coasts — it has no keyframe to coast on)
        if supervised && self.keyframes.is_some() {
            let spent = self
                .backend
                .stats()
                .total_cycles()
                .saturating_sub(cyc_frame);
            if self.supervisor.over_cycle_budget(spent) {
                let n = features[0].len();
                rung = DegradeRung::Coast;
                return self.coast_frame(index, gyro_delta, n, rung);
            }
        }

        // bootstrap: first frame becomes the keyframe at the origin
        let Some(keyframes) = &self.keyframes else {
            self.keyframes = Some(build_keyframes(index, self.pose_wc, &masks, &self.cameras));
            if let Some(map) = &mut self.map {
                map.integrate_keyframe(&features[0], &self.pose_wc);
            }
            self.pose_kc = SE3::IDENTITY;
            self.prev_pose_wc = self.pose_wc;
            return FrameResult {
                index,
                pose_wc: self.pose_wc,
                pose_kc: SE3::IDENTITY,
                is_keyframe: true,
                features: features[0].len(),
                iterations: 0,
                mean_residual: 0.0,
                state: self.state,
                rung,
            };
        };

        // coarse-to-fine LM edge alignment, warm-started from the
        // previous frame's keyframe-relative pose, rotated by the
        // inertial prediction when one is supplied:
        // T_k<-c_new = T_k<-c_prev ∘ (R_gyro, 0)
        let mut pose = match gyro_delta {
            Some(r) => self.pose_kc.compose(&SE3::new(r, pimvo_vomath::Vec3::ZERO)),
            None => self.pose_kc,
        };
        let mut lm_cfg = self.config.lm;
        if rung >= DegradeRung::CapLmIterations {
            lm_cfg.max_iterations = lm_cfg
                .max_iterations
                .min(self.supervisor.config().capped_lm_iterations);
        }
        let cyc = self.stage_cycles_start();
        let wall = self.telemetry.span("tracker", "align");
        let mut outcome: Option<LmOutcome> = None;
        let mut total_iterations = 0usize;
        for l in (0..levels).rev() {
            let out: LmOutcome = {
                let mut problem = AlignmentProblem {
                    backend: self.backend.as_mut(),
                    features: &features[l],
                    keyframe: &keyframes[l],
                    camera: &self.cameras[l],
                };
                LmSolver::new(lm_cfg).solve(&mut problem, pose)
            };
            pose = out.pose;
            total_iterations += out.iterations;
            outcome = Some(out);
        }
        let outcome = outcome.expect("at least one pyramid level");
        drop(wall);
        self.record_stage_cycles("align", cyc);

        // ---- graceful degradation: accept or reject the solve ---------
        let overlap = if features[0].is_empty() {
            0.0
        } else {
            outcome.residual_count as f64 / features[0].len() as f64
        };
        let rec = self.config.recovery;
        let bad = outcome.diverged
            || outcome.residual_count == 0
            || overlap < rec.min_valid_fraction
            || !outcome.final_cost.is_finite()
            || outcome.final_cost > rec.max_mean_residual;

        if bad {
            // never trust a rejected solve: coast on the motion prior
            // (gyro rotation when available, constant velocity otherwise)
            self.bad_frames += 1;
            self.state = if self.bad_frames >= rec.max_bad_frames {
                TrackingState::Lost
            } else {
                TrackingState::Degraded
            };
            if self.state == TrackingState::Lost {
                // re-seed at the last keyframe: the next well-supported
                // alignment starts from a pose the keyframe tables can
                // actually explain
                self.pose_kc = SE3::IDENTITY;
                self.pose_wc = keyframes[0].pose_wk;
                self.motion = SE3::IDENTITY;
            } else {
                let prior = match gyro_delta {
                    Some(r) => SE3::new(r, self.motion.translation),
                    None => self.motion,
                };
                self.pose_wc = self.prev_pose_wc.compose(&prior);
                self.pose_kc = keyframes[0].pose_wk.inverse().compose(&self.pose_wc);
            }
            self.prev_pose_wc = self.pose_wc;
            return FrameResult {
                index,
                pose_wc: self.pose_wc,
                pose_kc: self.pose_kc,
                is_keyframe: false, // a rejected frame never seeds a keyframe
                features: features[0].len(),
                iterations: total_iterations,
                mean_residual: outcome.final_cost,
                state: self.state,
                rung,
            };
        }
        self.state = TrackingState::Ok;
        self.bad_frames = 0;

        self.pose_kc = pose;
        // pose_kc = T_keyframe<-camera, so T_world<-camera composes directly
        self.pose_wc = keyframes[0].pose_wk.compose(&self.pose_kc);
        // constant-velocity prior update: T_c_prev <- c_curr
        self.motion = self.prev_pose_wc.inverse().compose(&self.pose_wc);
        self.prev_pose_wc = self.pose_wc;

        // keyframe policy (evaluated at the finest level)
        let needs_new_kf = self.pose_kc.translation_norm() > self.config.keyframe.max_translation
            || self.pose_kc.rotation_angle() > self.config.keyframe.max_rotation
            || overlap < self.config.keyframe.min_overlap;
        if needs_new_kf {
            self.keyframes = Some(build_keyframes(index, self.pose_wc, &masks, &self.cameras));
            if let Some(map) = &mut self.map {
                map.integrate_keyframe(&features[0], &self.pose_wc);
            }
            self.pose_kc = SE3::IDENTITY;
        }

        FrameResult {
            index,
            pose_wc: self.pose_wc,
            pose_kc: self.pose_kc,
            is_keyframe: needs_new_kf,
            features: features[0].len(),
            iterations: total_iterations,
            mean_residual: outcome.final_cost,
            state: self.state,
            rung,
        }
    }
}

/// Builds per-level keyframes from the per-level edge masks.
fn build_keyframes(
    index: usize,
    pose_wk: SE3,
    masks: &[GrayImage],
    cameras: &[Pinhole],
) -> Vec<Keyframe> {
    masks
        .iter()
        .zip(cameras)
        .map(|(mask, cam)| Keyframe::build(index, pose_wk, mask.clone(), cam))
        .collect()
}

/// Depth pyramid step: each coarse pixel takes the first valid depth of
/// its 2x2 block (host-side bookkeeping; depth maps are not processed
/// in the array).
fn downsample_depth(depth: &DepthImage) -> DepthImage {
    let (w, h) = (depth.width() / 2, depth.height() / 2);
    DepthImage::from_fn(w, h, |x, y| {
        for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let d = depth.get(2 * x + dx, 2 * y + dy);
            if d.is_finite() && d > 0.0 {
                return d;
            }
        }
        0.0
    })
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker")
            .field("frame_index", &self.frame_index)
            .field("has_keyframe", &self.keyframes.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured_frame(shift: f64) -> (GrayImage, DepthImage) {
        // a textured wall at 2 m; shifting the texture horizontally by
        // `shift` pixels emulates a sideways camera translation of
        // shift * z / f meters
        let gray = GrayImage::from_fn(320, 240, |x, y| {
            let xs = x as f64 + shift;
            let v = ((xs * 0.55).sin()
                + (y as f64 * 0.41).sin()
                + (xs * 0.13).sin() * (y as f64 * 0.09).cos())
                * 50.0
                + 120.0;
            v.clamp(0.0, 255.0) as u8
        });
        let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
        (gray, depth)
    }

    #[test]
    fn first_frame_is_keyframe() {
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        let (g, d) = textured_frame(0.0);
        let r = t.process_frame(&g, &d);
        assert!(r.is_keyframe);
        assert_eq!(r.index, 0);
        assert!(r.features > 100, "features {}", r.features);
        assert!(t.keyframe().is_some());
    }

    #[test]
    fn static_camera_stays_at_identity() {
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        let (g, d) = textured_frame(0.0);
        t.process_frame(&g, &d);
        let r = t.process_frame(&g, &d);
        assert!(r.pose_wc.translation_norm() < 5e-3, "{:?}", r.pose_wc);
        assert!(r.pose_wc.rotation_angle() < 5e-3);
    }

    #[test]
    fn lateral_texture_shift_recovers_translation() {
        // texture shifted by 2 px at depth 2 m, f = 265 -> the camera
        // moved ~ -2 * 2/265 = -0.0151 m in x (texture shift left =
        // camera right... sign depends on convention; magnitude counts)
        let cfg = TrackerConfig::default();
        let mut t = Tracker::new(cfg, BackendKind::Float);
        let (g0, d0) = textured_frame(0.0);
        t.process_frame(&g0, &d0);
        let (g1, d1) = textured_frame(2.0);
        let r = t.process_frame(&g1, &d1);
        let tx = r.pose_wc.translation.x.abs();
        assert!(
            (0.007..0.030).contains(&tx),
            "expected ~0.015 m lateral motion, got {tx} ({:?})",
            r.pose_wc.translation
        );
        assert!(r.iterations >= 1);
    }

    #[test]
    fn blank_frames_degrade_then_lose_then_relocalize() {
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        let (g, d) = textured_frame(0.0);
        t.process_frame(&g, &d);
        assert_eq!(t.state(), TrackingState::Ok);

        // a burst of featureless frames: no residual support at all
        let blank_g = GrayImage::from_fn(320, 240, |_, _| 128);
        let max_bad = t.config().recovery.max_bad_frames;
        let mut last = None;
        for _ in 0..max_bad {
            last = Some(t.process_frame(&blank_g, &d));
        }
        let last = last.expect("ran at least one blank frame");
        assert_eq!(last.state, TrackingState::Lost);
        assert!(!last.is_keyframe, "garbage frames must not seed keyframes");
        // Lost re-seeds at the keyframe: identity here
        assert!(last.pose_kc.translation_norm() < 1e-12);

        // texture returns: the tracker re-localizes within a frame
        let r = t.process_frame(&g, &d);
        assert_eq!(r.state, TrackingState::Ok);
        assert!(r.pose_wc.translation_norm() < 5e-3, "{:?}", r.pose_wc);
    }

    #[test]
    fn degraded_frames_coast_on_motion_prior() {
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        let (g0, d) = textured_frame(0.0);
        t.process_frame(&g0, &d);
        // establish a constant lateral velocity of 1 px/frame
        let (g1, _) = textured_frame(1.0);
        t.process_frame(&g1, &d);
        let (g2, _) = textured_frame(2.0);
        let r2 = t.process_frame(&g2, &d);
        assert_eq!(r2.state, TrackingState::Ok);
        let v = r2.pose_wc.translation - t.prev_pose_wc.translation; // == 0, anchor updated
        let _ = v;

        // one blank frame: the pose must extrapolate, not jump to junk
        let blank_g = GrayImage::from_fn(320, 240, |_, _| 128);
        let r3 = t.process_frame(&blank_g, &d);
        assert_eq!(r3.state, TrackingState::Degraded);
        let step = (r3.pose_wc.translation - r2.pose_wc.translation).norm();
        let per_frame = 2.0 / 265.0; // ~2 px/frame at 2 m, f ≈ 265
        assert!(
            step < 3.0 * per_frame + 1e-3,
            "prior step {step} should stay near the recent velocity"
        );
    }

    #[test]
    fn pim_backend_tracks_like_float() {
        let (g0, d0) = textured_frame(0.0);
        let (g1, d1) = textured_frame(1.5);

        let mut tf = Tracker::new(TrackerConfig::default(), BackendKind::Float);
        tf.process_frame(&g0, &d0);
        let rf = tf.process_frame(&g1, &d1);

        let mut tp = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
        tp.process_frame(&g0, &d0);
        let rp = tp.process_frame(&g1, &d1);

        // the single fronto-parallel wall makes x-translation /
        // y-rotation nearly degenerate, so the two backends may settle
        // at different points of the ambiguity valley; parity on
        // well-conditioned scenes is asserted by the integration tests
        let dt = (rf.pose_wc.translation - rp.pose_wc.translation).norm();
        assert!(dt < 0.05, "float vs pim translation differ by {dt}");
    }
}
