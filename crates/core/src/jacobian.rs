//! The Jacobian kernel (Fig. 5-c) with the shared-subexpression
//! pipeline of Fig. 5-d, in quantized (Q14.2) and float forms.
//!
//! Inputs per feature: the projection ratios `x̂ = X/Z`, `ŷ = Y/Z`
//! (Q2.14), the inverse real depth `1/Z_real` (Q4.12) and the
//! pre-scaled keyframe gradients `g_u = f·I_u`, `g_v = f·I_v` (Q14.2,
//! looked up at the warped pixel). Outputs: the six Q14.2 Jacobian
//! entries
//!
//! ```text
//! J1 = g_u / Z          J4 = -(ŷ·s + g_v)
//! J2 = g_v / Z          J5 =   x̂·s + g_u
//! J3 = -s / Z           J6 =   x̂·g_v - ŷ·g_u
//! ```
//!
//! with the shared term `s = x̂·g_u + ŷ·g_v` (all divisions by the
//! *real* depth, i.e. multiplications by `1/Z_real`).

use crate::qmath::{qmul_shr, sat16};
use crate::quant::RATIO_FRAC;

/// Quantized Jacobian row: six Q14.2 entries.
///
/// `qx`, `qy` are Q2.14; `iz_real` is Q4.12; `gu`, `gv` are Q14.2.
pub fn jacobian_q(qx: i64, qy: i64, iz_real: i64, gu: i64, gv: i64) -> [i64; 6] {
    // shared term s = x̂ g_u + ŷ g_v (Q14.2)
    let s = qmul_shr(qx, gu, RATIO_FRAC) + qmul_shr(qy, gv, RATIO_FRAC);
    let j1 = qmul_shr(gu, iz_real, 12);
    let j2 = qmul_shr(gv, iz_real, 12);
    let j3 = -qmul_shr(s, iz_real, 12);
    let j4 = -(qmul_shr(qy, s, RATIO_FRAC) + gv);
    let j5 = qmul_shr(qx, s, RATIO_FRAC) + gu;
    let j6 = qmul_shr(qx, gv, RATIO_FRAC) - qmul_shr(qy, gu, RATIO_FRAC);
    [
        sat16(j1),
        sat16(j2),
        sat16(j3),
        sat16(j4),
        sat16(j5),
        sat16(j6),
    ]
}

/// Float reference Jacobian with identical structure. `gu`, `gv` are
/// already `f·I`; `z_real` is the true metric depth of the warped
/// point.
pub fn jacobian_float(xh: f64, yh: f64, z_real: f64, gu: f64, gv: f64) -> [f64; 6] {
    let s = xh * gu + yh * gv;
    [
        gu / z_real,
        gv / z_real,
        -s / z_real,
        -(yh * s + gv),
        xh * s + gu,
        xh * gv - yh * gu,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmath::quantize;

    /// Quantize the float inputs, run both versions, compare.
    fn compare(xh: f64, yh: f64, z_real: f64, gu: f64, gv: f64) -> (f64, [f64; 6], [f64; 6]) {
        let jf = jacobian_float(xh, yh, z_real, gu, gv);
        let jq = jacobian_q(
            quantize(xh, RATIO_FRAC, 16),
            quantize(yh, RATIO_FRAC, 16),
            quantize(1.0 / z_real, 12, 16),
            quantize(gu, 2, 16),
            quantize(gv, 2, 16),
        );
        let jq_f: Vec<f64> = jq.iter().map(|&r| r as f64 / 4.0).collect();
        let max_err = jf
            .iter()
            .zip(&jq_f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        (
            max_err,
            jf,
            [jq_f[0], jq_f[1], jq_f[2], jq_f[3], jq_f[4], jq_f[5]],
        )
    }

    #[test]
    fn quantized_matches_float_within_budget() {
        // gradients at the f·I scale (f ~ 265, |I| <= ~1)
        for &(xh, yh, z, gu, gv) in &[
            (0.1, -0.2, 2.0, 180.0, -90.0),
            (-0.5, 0.4, 0.8, 260.0, 260.0),
            (0.0, 0.0, 1.5, -130.0, 40.0),
            (0.6, 0.55, 4.0, 15.0, -220.0),
        ] {
            let (err, jf, _) = compare(xh, yh, z, gu, gv);
            let scale = jf.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
            // error budget: a few Q14.2 LSBs relative to the row scale
            assert!(err < 0.02 * scale + 1.0, "err {err} at scale {scale}");
        }
    }

    #[test]
    fn zero_gradient_gives_zero_row() {
        let j = jacobian_q(1000, -2000, 2048, 0, 0);
        assert_eq!(j, [0i64; 6]);
    }

    #[test]
    fn translation_terms_scale_with_inverse_depth() {
        // J1 = gu / Z: halving the depth doubles the entry
        let j_near = jacobian_q(0, 0, quantize(1.0, 12, 16), 400, 0);
        let j_far = jacobian_q(0, 0, quantize(0.5, 12, 16), 400, 0);
        assert_eq!(j_near[0], 2 * j_far[0]);
    }

    #[test]
    fn j6_is_in_plane_rotation() {
        // pure g_v with positive x̂: J6 = x̂ g_v > 0
        let j = jacobian_q(quantize(0.5, RATIO_FRAC, 16), 0, 4096, 0, 400);
        assert!(j[5] > 0);
        assert_eq!(j[3], -400); // J4 = -(0 + gv)
    }

    #[test]
    fn entries_saturate_at_q14_2() {
        let j = jacobian_q(
            quantize(1.9, RATIO_FRAC, 16),
            quantize(1.9, RATIO_FRAC, 16),
            quantize(7.9, 12, 16),
            32767,
            32767,
        );
        for v in j {
            assert!((-32768..=32767).contains(&v));
        }
    }
}
