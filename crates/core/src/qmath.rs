//! Fixed-point helper semantics shared by the fast quantized path and
//! the PIM machine execution.
//!
//! Every helper here is defined to match one PIM primitive exactly:
//!
//! * [`qmul_shr`] — `mul_signed` followed by an arithmetic right shift
//!   of the double-width product in the Tmp Reg;
//! * [`qdiv`] — the restoring divider with sign pre/post-processing,
//!   truncating toward zero;
//! * [`sat32`] / [`sat16`] — the carry-extension saturation at the
//!   configured lane width.
//!
//! The equivalence is enforced by tests in [`crate::pim_exec`].

/// Full product then arithmetic right shift: `(a * b) >> shift`.
#[inline]
pub fn qmul_shr(a: i64, b: i64, shift: u32) -> i64 {
    (a * b) >> shift
}

/// Quotient truncated toward zero, like the PIM restoring divider with
/// sign fix-up. Division by zero saturates to the signed extreme of the
/// dividend's sign (the divider's all-ones quotient reinterpreted).
#[inline]
pub fn qdiv(num: i64, den: i64, sat_bits: u32) -> i64 {
    if den == 0 {
        let max = (1i64 << (sat_bits - 1)) - 1;
        return if num >= 0 { max } else { -max - 1 };
    }
    num / den
}

/// Saturate to signed 32-bit (the Q29.3 accumulator clamp).
#[inline]
pub fn sat32(v: i64) -> i64 {
    v.clamp(i32::MIN as i64, i32::MAX as i64)
}

/// Saturate to signed 16-bit (Q14.2 / Q4.12 outputs).
#[inline]
pub fn sat16(v: i64) -> i64 {
    v.clamp(i16::MIN as i64, i16::MAX as i64)
}

/// Round a float to the nearest fixed-point raw value with `frac`
/// fractional bits, saturating to `bits` total width.
#[inline]
pub fn quantize(v: f64, frac: u32, bits: u32) -> i64 {
    let scaled = (v * (1i64 << frac) as f64).round();
    let max = ((1i64 << (bits - 1)) - 1) as f64;
    let min = -(1i64 << (bits - 1)) as f64;
    scaled.clamp(min, max) as i64
}

/// Fixed-point raw value back to float.
#[allow(dead_code)] // symmetric counterpart of `quantize`, used in tests
#[inline]
pub fn dequantize(raw: i64, frac: u32) -> f64 {
    raw as f64 / (1i64 << frac) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_shift_truncates_toward_neg_inf() {
        assert_eq!(qmul_shr(-3, 1, 1), -2); // -3 >> 1 = -2
        assert_eq!(qmul_shr(3, 1, 1), 1);
        assert_eq!(qmul_shr(1 << 15, 1 << 15, 15), 1 << 15);
    }

    #[test]
    fn div_truncates_toward_zero() {
        assert_eq!(qdiv(-7, 2, 32), -3);
        assert_eq!(qdiv(7, 2, 32), 3);
        assert_eq!(qdiv(5, 0, 16), 32767);
        assert_eq!(qdiv(-5, 0, 16), -32768);
    }

    #[test]
    fn saturation_bounds() {
        assert_eq!(sat32(i64::MAX), i32::MAX as i64);
        assert_eq!(sat32(i64::MIN), i32::MIN as i64);
        assert_eq!(sat16(40000), 32767);
        assert_eq!(sat16(-40000), -32768);
        assert_eq!(sat16(1234), 1234);
    }

    #[test]
    fn quantize_roundtrip() {
        let v = 1.23456;
        let raw = quantize(v, 12, 16);
        assert!((dequantize(raw, 12) - v).abs() < 1.0 / 4096.0);
        // saturates
        assert_eq!(quantize(100.0, 12, 16), 32767);
        assert_eq!(quantize(-100.0, 12, 16), -32768);
    }
}
