//! Versioned, checksummed tracker snapshots — zero-external-dep binary
//! serialization for kill-and-restore.
//!
//! A [`Checkpoint`] captures everything the tracker needs to resume a
//! sequence mid-stream: poses, motion prior, recovery state, the
//! degradation-ladder rung, the keyframe edge masks (the quantized
//! lookup tables are *rebuilt* deterministically from the masks by
//! [`crate::Keyframe::build`], so the snapshot stays compact and the
//! restored tables are bit-identical), the 3D map points, and the
//! array pool's quarantine set. All floating-point state round-trips
//! through `f64::to_bits`, so a restored run replays the uninterrupted
//! run exactly.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "PIMVOCKP"
//! 8       2     version (u16 LE)
//! 10      8     config hash (u64 LE, FNV-1a over the estimator config)
//! 18      8     payload length (u64 LE)
//! 26      n     payload (see the field list in the source)
//! 26+n    4     CRC-32 (IEEE) over bytes [0, 26+n)
//! ```
//!
//! Writers are atomic: the file is written to a `.tmp` sibling and
//! renamed into place, so a crash mid-write never leaves a truncated
//! snapshot under the real name. Readers reject damage with typed
//! [`CheckpointError`]s — wrong magic, unsupported version, truncation,
//! checksum mismatch, config mismatch — and never panic on foreign
//! bytes.

use crate::supervisor::DegradeRung;
use crate::tracker::TrackingState;
use pimvo_kernels::GrayImage;
use pimvo_vomath::{Mat3, Vec3, SE3, SO3};
use std::fmt;
use std::path::Path;

/// Magic prefix of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"PIMVOCKP";
/// Current (and only) format version.
pub const VERSION: u16 = 1;
/// Fixed header size: magic + version + config hash + payload length.
const HEADER_LEN: usize = 8 + 2 + 8 + 8;
/// Sanity bound on keyframe pyramid levels in a snapshot.
const MAX_LEVELS: usize = 8;
/// Sanity bound on image dimensions in a snapshot.
const MAX_DIM: u32 = 1 << 14;

/// Why a snapshot could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing the snapshot.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the file.
        got: u16,
        /// Highest version this build supports.
        supported: u16,
    },
    /// The file ends before the announced payload (+ checksum) does.
    Truncated {
        /// Bytes the format required.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The stored CRC-32 does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file.
        computed: u32,
    },
    /// The snapshot was taken under a different tracker configuration.
    ConfigMismatch {
        /// Config hash stored in the snapshot.
        snapshot: u64,
        /// Config hash of the restoring tracker.
        current: u64,
    },
    /// The payload is internally inconsistent (invalid enum tag,
    /// non-finite pose, absurd dimensions, trailing bytes).
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic => write!(f, "not a pimvo checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { got, supported } => {
                write!(f, "checkpoint version {got} unsupported (max {supported})")
            }
            CheckpointError::Truncated { expected, got } => {
                write!(f, "checkpoint truncated: need {expected} bytes, have {got}")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CheckpointError::ConfigMismatch { snapshot, current } => {
                write!(
                    f,
                    "checkpoint config hash {snapshot:#018x} does not match tracker {current:#018x}"
                )
            }
            CheckpointError::Malformed(what) => write!(f, "checkpoint malformed: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Keyframe state in a snapshot: the per-level edge masks plus the
/// shared pose. Lookup tables (distance transform, gradients, quantized
/// forms) are rebuilt deterministically on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyframeSnapshot {
    /// Frame index the keyframe was promoted at.
    pub frame_index: usize,
    /// World-from-keyframe pose.
    pub pose_wk: SE3,
    /// Per-pyramid-level binary edge masks (index 0 = full resolution).
    pub masks: Vec<GrayImage>,
}

/// Map state in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSnapshot {
    /// Deduplication voxel size (meters).
    pub voxel_m: f64,
    /// World-frame map points.
    pub points: Vec<Vec3>,
}

/// Array-pool health in a snapshot: the quarantine set and the pool's
/// recovery counters (per-array fault counters describe the physical
/// arrays' past and are not carried across a restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Which arrays were quarantined, in array order.
    pub quarantined: Vec<bool>,
    /// Shard retries performed.
    pub retries: u64,
    /// Shards re-dispatched after a quarantine.
    pub redispatches: u64,
    /// Shards accepted with detected-but-uncorrected errors.
    pub dirty_accepted: u64,
}

/// A complete tracker snapshot — build with [`crate::Tracker::checkpoint`],
/// apply with [`crate::Tracker::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Hash of the estimator configuration the snapshot was taken
    /// under; restore refuses a mismatch.
    pub config_hash: u64,
    /// Next frame index the tracker will process.
    pub frame_index: usize,
    /// Tracking quality state.
    pub state: TrackingState,
    /// Consecutive bad frames in the current degraded stretch.
    pub bad_frames: usize,
    /// World-from-camera pose of the latest frame.
    pub pose_wc: SE3,
    /// Keyframe-from-camera pose of the latest frame.
    pub pose_kc: SE3,
    /// World-from-camera pose of the previous frame.
    pub prev_pose_wc: SE3,
    /// Constant-velocity motion prior.
    pub motion: SE3,
    /// Degradation-ladder rung the supervisor will start the next
    /// frame at.
    pub rung: DegradeRung,
    /// Deadline misses accumulated so far.
    pub deadline_misses: u64,
    /// Frames coasted by the supervisor so far.
    pub coasted_frames: u64,
    /// Keyframe state (absent before bootstrap).
    pub keyframes: Option<KeyframeSnapshot>,
    /// 3D map state (absent when map building is off).
    pub map: Option<MapSnapshot>,
    /// Array-pool health (absent on backends without a pool).
    pub pool: Option<PoolSnapshot>,
}

// ---------------------------------------------------------------- CRC32

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------- config hashing

/// FNV-1a accumulator for the config hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Deterministic, RNG-free hash of the *estimator* configuration —
/// every field that affects what poses a sequence produces. The
/// deadline budget is deliberately excluded: it is a runtime QoS knob
/// (chaos harnesses and `--frame-budget-cycles` adjust it mid-run),
/// and a snapshot taken under a squeezed budget must restore into a
/// tracker whose budget has since changed.
pub fn config_hash(cfg: &crate::TrackerConfig) -> u64 {
    let mut h = Fnv::new();
    // camera
    h.f64(cfg.camera.f);
    h.f64(cfg.camera.cx);
    h.f64(cfg.camera.cy);
    h.u64(cfg.camera.width as u64);
    h.u64(cfg.camera.height as u64);
    // edge thresholds
    h.bytes(&[cfg.edge.th1, cfg.edge.th2]);
    h.u64(cfg.edge.border as u64);
    // LM solver
    h.u64(cfg.lm.max_iterations as u64);
    h.f64(cfg.lm.initial_lambda);
    h.f64(cfg.lm.lambda_up);
    h.f64(cfg.lm.lambda_down);
    h.f64(cfg.lm.min_delta_norm);
    h.f64(cfg.lm.min_rel_decrease);
    h.f64(cfg.lm.lambda_max);
    // keyframe policy
    h.f64(cfg.keyframe.max_translation);
    h.f64(cfg.keyframe.max_rotation);
    h.f64(cfg.keyframe.min_overlap);
    // recovery
    h.f64(cfg.recovery.max_mean_residual);
    h.f64(cfg.recovery.min_valid_fraction);
    h.u64(cfg.recovery.max_bad_frames as u64);
    // pipeline shape
    h.u64(cfg.pyramid_levels as u64);
    h.u64(cfg.max_features as u64);
    h.bytes(&[cfg.build_map as u8]);
    h.f64(cfg.map_voxel_m);
    h.f64(cfg.min_depth);
    h.f64(cfg.max_depth);
    h.0
}

// --------------------------------------------------------------- codec

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec3(&mut self, v: &Vec3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }
    fn se3(&mut self, p: &SE3) {
        for row in &p.rotation.matrix().m {
            for &e in row {
                self.f64(e);
            }
        }
        self.vec3(&p.translation);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CheckpointError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated {
                expected: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn vec3(&mut self) -> Result<Vec3, CheckpointError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }
    fn se3(&mut self) -> Result<SE3, CheckpointError> {
        let mut m = [[0.0f64; 3]; 3];
        for row in &mut m {
            for e in row.iter_mut() {
                *e = self.f64()?;
            }
        }
        let t = self.vec3()?;
        let pose = SE3::new(SO3::from_matrix_unchecked(Mat3 { m }), t);
        if !pose_finite(&pose) {
            return Err(CheckpointError::Malformed("non-finite pose"));
        }
        Ok(pose)
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Every component of the pose is a finite number.
pub fn pose_finite(p: &SE3) -> bool {
    p.rotation
        .matrix()
        .m
        .iter()
        .flatten()
        .all(|e| e.is_finite())
        && p.translation.x.is_finite()
        && p.translation.y.is_finite()
        && p.translation.z.is_finite()
}

impl Checkpoint {
    /// Serializes the snapshot into the versioned, checksummed format
    /// described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.frame_index as u64);
        w.u8(match self.state {
            TrackingState::Ok => 0,
            TrackingState::Degraded => 1,
            TrackingState::Lost => 2,
        });
        w.u64(self.bad_frames as u64);
        w.se3(&self.pose_wc);
        w.se3(&self.pose_kc);
        w.se3(&self.prev_pose_wc);
        w.se3(&self.motion);
        w.u8(self.rung.index() as u8);
        w.u64(self.deadline_misses);
        w.u64(self.coasted_frames);

        match &self.keyframes {
            None => w.u8(0),
            Some(kf) => {
                w.u8(1);
                w.u64(kf.frame_index as u64);
                w.se3(&kf.pose_wk);
                w.u8(kf.masks.len() as u8);
                for mask in &kf.masks {
                    w.u32(mask.width());
                    w.u32(mask.height());
                    w.buf.extend_from_slice(mask.pixels());
                }
            }
        }
        match &self.map {
            None => w.u8(0),
            Some(m) => {
                w.u8(1);
                w.f64(m.voxel_m);
                w.u64(m.points.len() as u64);
                for p in &m.points {
                    w.vec3(p);
                }
            }
        }
        match &self.pool {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.u32(p.quarantined.len() as u32);
                for &q in &p.quarantined {
                    w.u8(q as u8);
                }
                w.u64(p.retries);
                w.u64(p.redispatches);
                w.u64(p.dirty_accepted);
            }
        }

        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a snapshot. Checks run in order — magic,
    /// version, length, checksum, payload — so each class of damage
    /// maps to its own [`CheckpointError`] variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated {
                expected: HEADER_LEN + 4,
                got: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated {
                expected: HEADER_LEN + 4,
                got: bytes.len(),
            });
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2"));
        if version > VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                got: version,
                supported: VERSION,
            });
        }
        let config_hash = u64::from_le_bytes(bytes[10..18].try_into().expect("8"));
        let payload_len = u64::from_le_bytes(bytes[18..26].try_into().expect("8")) as usize;
        let total = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(4))
            .ok_or(CheckpointError::Malformed("length overflow"))?;
        if bytes.len() < total {
            return Err(CheckpointError::Truncated {
                expected: total,
                got: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        let stored = u32::from_le_bytes(bytes[total - 4..].try_into().expect("4"));
        let computed = crc32(&bytes[..total - 4]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(&bytes[HEADER_LEN..total - 4]);
        let frame_index = r.u64()? as usize;
        let state = match r.u8()? {
            0 => TrackingState::Ok,
            1 => TrackingState::Degraded,
            2 => TrackingState::Lost,
            _ => return Err(CheckpointError::Malformed("invalid tracking state")),
        };
        let bad_frames = r.u64()? as usize;
        let pose_wc = r.se3()?;
        let pose_kc = r.se3()?;
        let prev_pose_wc = r.se3()?;
        let motion = r.se3()?;
        let rung_idx = r.u8()? as usize;
        if rung_idx >= DegradeRung::LADDER.len() {
            return Err(CheckpointError::Malformed("invalid degrade rung"));
        }
        let rung = DegradeRung::from_index(rung_idx);
        let deadline_misses = r.u64()?;
        let coasted_frames = r.u64()?;

        let keyframes = match r.u8()? {
            0 => None,
            1 => {
                let kf_index = r.u64()? as usize;
                let pose_wk = r.se3()?;
                let levels = r.u8()? as usize;
                if levels == 0 || levels > MAX_LEVELS {
                    return Err(CheckpointError::Malformed("invalid pyramid level count"));
                }
                let mut masks = Vec::with_capacity(levels);
                for _ in 0..levels {
                    let w = r.u32()?;
                    let h = r.u32()?;
                    if w == 0 || h == 0 || w > MAX_DIM || h > MAX_DIM {
                        return Err(CheckpointError::Malformed("invalid mask dimensions"));
                    }
                    let data = r.take((w as usize) * (h as usize))?.to_vec();
                    masks.push(GrayImage::from_raw(w, h, data));
                }
                Some(KeyframeSnapshot {
                    frame_index: kf_index,
                    pose_wk,
                    masks,
                })
            }
            _ => return Err(CheckpointError::Malformed("invalid keyframe tag")),
        };

        let map = match r.u8()? {
            0 => None,
            1 => {
                let voxel_m = r.f64()?;
                if !(voxel_m.is_finite() && voxel_m > 0.0) {
                    return Err(CheckpointError::Malformed("invalid voxel size"));
                }
                let count = r.u64()? as usize;
                if count > r.remaining() / 24 {
                    return Err(CheckpointError::Truncated {
                        expected: total,
                        got: bytes.len(),
                    });
                }
                let mut points = Vec::with_capacity(count);
                for _ in 0..count {
                    points.push(r.vec3()?);
                }
                Some(MapSnapshot { voxel_m, points })
            }
            _ => return Err(CheckpointError::Malformed("invalid map tag")),
        };

        let pool = match r.u8()? {
            0 => None,
            1 => {
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(CheckpointError::Truncated {
                        expected: total,
                        got: bytes.len(),
                    });
                }
                let mut quarantined = Vec::with_capacity(n);
                for _ in 0..n {
                    quarantined.push(match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(CheckpointError::Malformed("invalid quarantine flag")),
                    });
                }
                Some(PoolSnapshot {
                    quarantined,
                    retries: r.u64()?,
                    redispatches: r.u64()?,
                    dirty_accepted: r.u64()?,
                })
            }
            _ => return Err(CheckpointError::Malformed("invalid pool tag")),
        };

        if r.remaining() != 0 {
            return Err(CheckpointError::Malformed("trailing payload bytes"));
        }

        Ok(Checkpoint {
            config_hash,
            frame_index,
            state,
            bad_frames,
            pose_wc,
            pose_kc,
            prev_pose_wc,
            motion,
            rung,
            deadline_misses,
            coasted_frames,
            keyframes,
            map,
            pool,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, then
    /// rename over `path`. A crash mid-write leaves either the previous
    /// snapshot or a stray `.tmp`, never a truncated file under the
    /// real name.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a snapshot file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let pose = SE3::exp(&[0.1, -0.2, 0.05, 0.01, 0.02, -0.03]);
        let mask = GrayImage::from_fn(8, 6, |x, y| if (x + y) % 3 == 0 { 255 } else { 0 });
        Checkpoint {
            config_hash: 0xDEAD_BEEF_CAFE_F00D,
            frame_index: 42,
            state: TrackingState::Degraded,
            bad_frames: 2,
            pose_wc: pose,
            pose_kc: SE3::IDENTITY,
            prev_pose_wc: pose,
            motion: SE3::exp(&[0.0, 0.0, 0.001, 0.0, 0.0, 0.0]),
            rung: DegradeRung::ReduceFeatures,
            deadline_misses: 3,
            coasted_frames: 1,
            keyframes: Some(KeyframeSnapshot {
                frame_index: 40,
                pose_wk: pose,
                masks: vec![mask],
            }),
            map: Some(MapSnapshot {
                voxel_m: 0.02,
                points: vec![Vec3::new(1.0, -2.0, 3.0), Vec3::new(0.5, 0.25, 7.0)],
            }),
            pool: Some(PoolSnapshot {
                quarantined: vec![false, true, false],
                retries: 5,
                redispatches: 1,
                dirty_accepted: 0,
            }),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn every_bitflip_class_is_detected() {
        let bytes = sample().to_bytes();
        // flip one byte in the payload -> checksum mismatch
        let mut b = bytes.clone();
        b[HEADER_LEN + 5] ^= 0x40;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // wrong magic
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::BadMagic)
        ));
        // future version
        let mut b = bytes.clone();
        b[8] = 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));
        // truncation at every prefix length parses to a typed error,
        // never a panic
        for cut in [0, 4, 9, 17, 25, HEADER_LEN + 3, bytes.len() - 5] {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::BadMagic
                ),
                "cut {cut}: {err}"
            );
        }
        // trailing garbage
        let mut b = bytes.clone();
        b.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&b),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn non_finite_pose_rejected() {
        let mut ckpt = sample();
        ckpt.pose_wc.translation.x = f64::NAN;
        let bytes = ckpt.to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Malformed("non-finite pose"))
        ));
    }

    #[test]
    fn crc32_reference_vector() {
        // the classic check value for CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = crate::TrackerConfig::default();
        let mut b = a.clone();
        assert_eq!(config_hash(&a), config_hash(&b));
        b.max_features -= 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        let mut c = a.clone();
        c.lm.initial_lambda *= 2.0;
        assert_ne!(config_hash(&a), config_hash(&c));
    }
}
