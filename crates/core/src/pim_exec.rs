//! Machine-level execution of the pose-estimation pipeline.
//!
//! The tracker's [`crate::PimBackend`] evaluates the quantized warp /
//! Jacobian / Hessian pipeline with fast scalar integer code (exactly
//! the arithmetic defined in the `warp`, `jacobian` and `hessian`
//! modules). This module executes the *same* pipeline as an
//! instruction sequence on the [`PimMachine`]:
//!
//! * for **verification** — tests assert the machine-produced lane
//!   values equal the fast path bit-for-bit;
//! * for **cost calibration** — the instruction sequence is
//!   data-independent, so one traced batch yields the exact cycle and
//!   energy cost of every batch; the backend scales the trace by the
//!   batch count instead of re-simulating gigalanes of identical ops.
//!
//! # Schedule
//!
//! One batch covers up to 80 features (32-bit lanes of one word line).
//! The pipeline is written once as five macro-op programs
//! ([`pimvo_pim::PimProgram`]) — warp/projection/validity, fractional
//! weights, residual, Jacobian and Hessian — and lowered onto the
//! machine by [`pimvo_pim::lower()`] at the [`LowerLevel`] the
//! [`BatchMapping`] selects; host stages (lane writes, broadcasts,
//! gathers, readbacks) run between the programs. Warp, projection and
//! Jacobian run at `W32` (the paper: "the LM solver incurs a lot of
//! 32-bit mul/div operations, which has ... 4x less throughput than
//! the 8-bit image processing"). The Hessian/steepest-descent products
//! run at `W16` on the Q14.2 Jacobians, packing two 80-feature
//! half-batches per word line — the design reason the paper quantizes
//! `J` to 16 bits — so their traced cost is charged at half per
//! half-batch.
//!
//! Residual/gradient lookups are host-addressed gathers
//! ([`PimMachine::gather`]): one serialized read cycle per element, as
//! random access cannot use the SIMD datapath.

use crate::hessian::{tri_idx, QNormalEquations};
use crate::quant::{Interp, QFeature, QKeyframe, QPose, PIX_FRAC, POSE_FRAC, RATIO_FRAC};
use pimvo_pim::{
    ArrayConfig, LaneWidth, LowerLevel, LoweredCache, PimArrayPool, PimError, PimMachine,
    PimMachineBuilder, PimProgram, ScratchRows, Signedness, VReg, Val,
};
use pimvo_vomath::Pinhole;

use Val::Row;

/// Features per machine batch (32-bit lanes per word line).
pub const BATCH: usize = 80;

/// Default scratch base row for the pose-estimation stage: in the
/// scratch bank, above the edge-detection regions.
pub const POSE_BASE: usize = 5 * 256 + 64;

/// Which machine mapping evaluates a batch.
///
/// The pipeline is written once as macro-op programs
/// ([`pimvo_pim::PimProgram`]); the mapping picks the
/// [`LowerLevel`] they are lowered at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMapping {
    /// The paper's optimized schedule ([`LowerLevel::Opt`]): Tmp-Reg
    /// chaining, the Fig. 5-d shared-subexpression pipeline and packed
    /// gathers.
    #[default]
    Opt,
    /// The naive mapping of Fig. 9-b's `LM*` group
    /// ([`LowerLevel::Naive`]): identical values, but every
    /// intermediate round-trips through SRAM; on top of the naive
    /// lowering, shared terms are charged as recomputed and gathers as
    /// unpacked (see `charge_naive_extras`).
    Naive,
}

impl BatchMapping {
    /// The lowering level this mapping runs the pose programs at.
    fn level(self) -> LowerLevel {
        match self {
            BatchMapping::Opt => LowerLevel::Opt,
            BatchMapping::Naive => LowerLevel::Naive,
        }
    }
}

/// Options of a [`BatchRunner`]: mapping, residual interpolation and
/// pool size in one place.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Machine mapping (optimized or naive schedule).
    pub mapping: BatchMapping,
    /// Residual-interpolation mode of the keyframe lookup.
    pub interp: Interp,
    /// Number of PIM arrays batches are sharded across.
    pub pool: usize,
    /// When true, [`crate::TrackerBackend::linearize`] on the PIM
    /// backend executes every batch
    /// on the machines (through [`BatchRunner::submit`]) instead of
    /// the calibrated fast scalar path. Slower to simulate but required
    /// for fault-injection studies: injected upsets then actually
    /// corrupt the normal equations.
    pub on_machine: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            mapping: BatchMapping::Opt,
            interp: Interp::Bilinear,
            pool: 1,
            on_machine: false,
        }
    }
}

/// Unified submission front end for the pose-estimation pipeline.
///
/// The runner owns a [`PimArrayPool`] and executes whole feature sets:
/// [`BatchRunner::submit`] splits the features into [`BATCH`]-sized
/// chunks and shards them across the pool's arrays in sections of
/// `pool` batches, one pool barrier per section. The legacy free
/// functions [`run_batch`], [`run_batch_with`] and [`run_batch_naive`]
/// are thin wrappers over the same single-batch core.
///
/// ```
/// use pimvo_core::pim_exec::{BatchOptions, BatchRunner};
///
/// let runner = BatchRunner::new(BatchOptions { pool: 2, ..Default::default() });
/// assert_eq!(runner.pool().len(), 2);
/// ```
#[derive(Debug)]
pub struct BatchRunner {
    pool: PimArrayPool,
    base_row: usize,
    options: BatchOptions,
}

impl BatchRunner {
    /// Creates a runner over `options.pool` six-bank QVGA arrays.
    ///
    /// # Panics
    ///
    /// Panics if `options.pool` is zero.
    pub fn new(options: BatchOptions) -> Self {
        Self::from_builder(&PimMachine::builder(ArrayConfig::qvga_banks(6)), options)
    }

    /// Creates a runner whose arrays are stamped from an explicit
    /// builder configuration.
    ///
    /// # Panics
    ///
    /// Panics if `options.pool` is zero.
    pub fn from_builder(builder: &PimMachineBuilder, options: BatchOptions) -> Self {
        BatchRunner {
            pool: builder.build_pool(options.pool),
            base_row: POSE_BASE,
            options,
        }
    }

    /// Overrides the scratch base row (default [`POSE_BASE`]).
    pub fn with_base_row(mut self, base_row: usize) -> Self {
        self.base_row = base_row;
        self
    }

    /// The runner's options.
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// The scratch base row batches stage through.
    pub fn base_row(&self) -> usize {
        self.base_row
    }

    /// Shared view of the underlying array pool.
    pub fn pool(&self) -> &PimArrayPool {
        &self.pool
    }

    /// Exclusive access to the underlying array pool (edge kernels,
    /// calibration, stats reset).
    pub fn pool_mut(&mut self) -> &mut PimArrayPool {
        &mut self.pool
    }

    /// Executes a whole feature set: chunks of [`BATCH`] features are
    /// sharded across the pool's arrays, one parallel phase per section
    /// of `pool.len()` batches. Returns the per-batch outputs in
    /// feature order — bit-identical to running the chunks sequentially
    /// on a single array.
    ///
    /// The submission is fault-resilient: sections are sized to the
    /// pool's *healthy* array count and run through
    /// [`PimArrayPool::run_phase_resilient`], so a shard whose array
    /// reports detected errors is retried and — on a persistent defect —
    /// re-dispatched to another array (each `exec_batch` is
    /// self-contained: it host-writes every input it reads, making
    /// re-execution on any array safe). With inert fault models the
    /// outputs, cycles and energy are bit-identical to a build without
    /// the resilience layer.
    ///
    /// # Errors
    ///
    /// [`PimError::AllArraysQuarantined`] once no healthy array remains.
    pub fn submit(
        &mut self,
        feats: &[QFeature],
        pose: &QPose,
        kf: &QKeyframe,
        cam: &Pinhole,
    ) -> Result<Vec<BatchOutput>, PimError> {
        let chunks: Vec<&[QFeature]> = feats.chunks(BATCH).collect();
        let (base_row, opts) = (self.base_row, self.options);
        // every shard lowers through the pool's shared memo table, so
        // the five pose programs lower once per (level, geometry) —
        // not once per shard, batch or session
        let cache = self.pool.lowered_cache().clone();
        let mut outputs = Vec::with_capacity(chunks.len());
        let mut next = 0;
        while next < chunks.len() {
            // re-sized every section: recovery may quarantine arrays
            let n = self.pool.healthy_len();
            let section = &chunks[next..chunks.len().min(next + n.max(1))];
            let results = self
                .pool
                .run_phase_resilient_labeled("lm_batch", |shard, m| {
                    section.get(shard).map(|c| {
                        exec_batch(
                            m,
                            base_row,
                            c,
                            pose,
                            kf,
                            cam,
                            opts.interp,
                            opts.mapping,
                            &cache,
                        )
                    })
                })?;
            outputs.extend(results.into_iter().flatten());
            next += section.len();
        }
        Ok(outputs)
    }
}

/// Row allocation for the pose-estimation stage (in the scratch bank,
/// above the edge-detection regions).
#[derive(Debug, Clone, Copy)]
struct PoseRows {
    base: usize,
}

impl PoseRows {
    const A: usize = 0; // feature a
    const B: usize = 1; // feature b
    const C: usize = 2; // feature c
    const ONE: usize = 3; // broadcast 1.0 in the feature format
    const POSE0: usize = 4; // r00..r22, t0..t2 broadcasts (12 rows)
    const CONST_F: usize = 16; // focal length, Q10.6
    const CONST_CX: usize = 17;
    const CONST_CY: usize = 18;
    const QX: usize = 22;
    const QY: usize = 23;
    const U: usize = 24;
    const V: usize = 25;
    const IZ: usize = 27;
    const GU: usize = 28;
    const GV: usize = 29;
    const RES: usize = 30;
    const J0: usize = 32; // J0..J5 -> rows 32..37
    const SCRATCH: usize = 38;
    const ZMASK: usize = 39;
    const LOWHALF: usize = 40;
    const WU: usize = 41;
    const WV: usize = 42;
    const D00: usize = 43;
    const D10: usize = 44;
    const D01: usize = 45;
    const D11: usize = 46;
    // Scratch pool the lowering pass spills into (rows 47..54; the
    // warp / X / Y / Z / S intermediates of the old hand schedule now
    // live in virtual registers and materialize here only on spill).
    const LOWER: usize = 47;
    const LOWER_LEN: usize = 8;

    fn new(base: usize) -> Self {
        PoseRows { base }
    }
    fn r(&self, off: usize) -> usize {
        self.base + off
    }

    /// Scratch rows handed to [`lower`] for register spills.
    fn lower_scratch(&self) -> ScratchRows {
        ScratchRows::contiguous(self.r(Self::LOWER), Self::LOWER_LEN)
    }
}

/// Lowers `prog` at `level` and executes it, returning the in-array
/// reduction results in program order.
///
/// # Panics
///
/// Panics if the program fails to lower (a bug in the builders below)
/// or references rows outside the machine.
fn run_pose_program(
    m: &mut PimMachine,
    prog: &PimProgram,
    level: LowerLevel,
    scratch: &ScratchRows,
    cache: &LoweredCache,
) -> Vec<i64> {
    let lowered = cache
        .get_or_lower(prog, level, scratch, m.config())
        .unwrap_or_else(|e| panic!("lowering {} at {level}: {e}", prog.name()));
    m.run_program(&lowered)
        .unwrap_or_else(|e| panic!("running {}: {e}", prog.name()))
}

/// Warp, projection and depth-validity program (Fig. 5-b):
/// `X/Y/Z = r0*a + r1*b + r2*1 + t*c`, the pinhole projection to
/// `(u, v)`, the inverse real depth `c/Z` and the combined Z-positive /
/// low-half lane mask. Stores `QX, QY, U, V, IZ, ZMASK`; everything
/// else stays in virtual registers.
fn warp_program(rows: &PoseRows, ff: u32) -> PimProgram {
    let mut p = PimProgram::new("pose_warp");
    p.set_lanes(LaneWidth::W32, Signedness::Signed);
    let coord = |p: &mut PimProgram, r0: usize, r1: usize, r2: usize, t: usize| -> VReg {
        let m1 = p.mul_signed(Row(rows.r(PoseRows::POSE0 + r0)), Row(rows.r(PoseRows::A)));
        let m2 = p.mul_signed(Row(rows.r(PoseRows::POSE0 + r1)), Row(rows.r(PoseRows::B)));
        let s1 = p.add(m2.into(), m1.into());
        let m3 = p.mul_signed(
            Row(rows.r(PoseRows::POSE0 + r2)),
            Row(rows.r(PoseRows::ONE)),
        );
        let s2 = p.add(m3.into(), s1.into());
        // the homogeneous rotation column r*2 is pre-shifted by the
        // host to the warp accumulator format (a per-iteration
        // constant)
        let m4 = p.mul_signed(
            Row(rows.r(PoseRows::POSE0 + 9 + t)),
            Row(rows.r(PoseRows::C)),
        );
        p.add(m4.into(), s2.into())
    };
    let x = coord(&mut p, 0, 1, 2, 0);
    let y = coord(&mut p, 3, 4, 5, 1);
    let z = coord(&mut p, 6, 7, 8, 2);

    // projection
    let qx = p.div_frac_signed(x.into(), z.into(), RATIO_FRAC);
    p.store(qx, rows.r(PoseRows::QX));
    let qy = p.div_frac_signed(y.into(), z.into(), RATIO_FRAC);
    p.store(qy, rows.r(PoseRows::QY));
    let u1 = p.mul_signed(Row(rows.r(PoseRows::CONST_F)), qx.into());
    let u2 = p.shr_bits(u1.into(), RATIO_FRAC);
    let u = p.add(u2.into(), Row(rows.r(PoseRows::CONST_CX)));
    p.store(u, rows.r(PoseRows::U));
    let v1 = p.mul_signed(Row(rows.r(PoseRows::CONST_F)), qy.into());
    let v2 = p.shr_bits(v1.into(), RATIO_FRAC);
    let v = p.add(v2.into(), Row(rows.r(PoseRows::CONST_CY)));
    p.store(v, rows.r(PoseRows::V));

    // Z rescaled to Q4.12 and the inverse real depth c/Z (Q4.12)
    let z12 = p.shr_bits(z.into(), POSE_FRAC + ff - 12);
    let iz0 = p.div_frac_signed(Row(rows.r(PoseRows::C)), z12.into(), 12);
    let iz = match ff.cmp(&12) {
        std::cmp::Ordering::Greater => p.shr_bits(iz0.into(), ff - 12),
        std::cmp::Ordering::Less => p.shl_bits(iz0.into(), 12 - ff),
        std::cmp::Ordering::Equal => iz0,
    };
    p.store(iz, rows.r(PoseRows::IZ));

    // validity mask: Z12 > 0 (behind-camera and degenerate-depth lanes
    // are masked, branch-free), combined with a low-half constant so
    // the 32-bit-stored Q14.2 values reinterpret cleanly as 16-bit
    // lanes in the Hessian stage
    let zm0 = p.cmp_gt(z12.into(), Row(rows.r(PoseRows::SCRATCH)));
    let zm = p.and(zm0.into(), Row(rows.r(PoseRows::LOWHALF)));
    p.store(zm, rows.r(PoseRows::ZMASK));
    p
}

/// Bilinear fractional weights `wu, wv` (Q0.6): one AND with the 0x3F
/// constant the host broadcast into the scratch row.
fn frac_weights_program(rows: &PoseRows) -> PimProgram {
    let mut p = PimProgram::new("pose_frac");
    p.set_lanes(LaneWidth::W32, Signedness::Signed);
    let wu = p.and(Row(rows.r(PoseRows::U)), Row(rows.r(PoseRows::SCRATCH)));
    p.store(wu, rows.r(PoseRows::WU));
    let wv = p.and(Row(rows.r(PoseRows::V)), Row(rows.r(PoseRows::SCRATCH)));
    p.store(wv, rows.r(PoseRows::WV));
    p
}

/// Residual program: bilinear interpolation of the gathered DT corners
/// (`dx0 = d00 + ((d10 - d00) * wu >> 6)`, likewise `dx1`, then the
/// vertical lerp), or a plain masked copy in nearest mode where the
/// gathered value *is* the residual. Either way the Z/low-half mask is
/// folded in before the single store to the residual row.
fn residual_program(rows: &PoseRows, interp: Interp) -> PimProgram {
    let mut p = PimProgram::new("pose_residual");
    p.set_lanes(LaneWidth::W32, Signedness::Signed);
    let r = match interp {
        Interp::Bilinear => {
            let lerp = |p: &mut PimProgram, a: Val, b: Val, w: Val| -> VReg {
                let d = p.sub(b, a);
                let mq = p.mul_signed(d.into(), w);
                let s = p.shr_bits(mq.into(), PIX_FRAC);
                p.add(s.into(), a)
            };
            let dx0 = lerp(
                &mut p,
                Row(rows.r(PoseRows::D00)),
                Row(rows.r(PoseRows::D10)),
                Row(rows.r(PoseRows::WU)),
            );
            let dx1 = lerp(
                &mut p,
                Row(rows.r(PoseRows::D01)),
                Row(rows.r(PoseRows::D11)),
                Row(rows.r(PoseRows::WU)),
            );
            lerp(&mut p, dx0.into(), dx1.into(), Row(rows.r(PoseRows::WV)))
        }
        Interp::Nearest => p.load(Row(rows.r(PoseRows::RES))),
    };
    let rm = p.and(r.into(), Row(rows.r(PoseRows::ZMASK)));
    p.store(rm, rows.r(PoseRows::RES));
    p
}

/// Jacobian program (the Fig. 5-d shared-subexpression pipeline): the
/// shared `s = (qx*gu + qy*gv) >> RATIO_FRAC` term feeds J2, J3 and
/// J4; each row is saturated to 16 bits, masked by the combined
/// Z/low-half mask and stored packed for the W16 Hessian stage.
fn jacobian_program(rows: &PoseRows) -> PimProgram {
    let mut p = PimProgram::new("pose_jacobian");
    p.set_lanes(LaneWidth::W32, Signedness::Signed);
    let qx = Row(rows.r(PoseRows::QX));
    let qy = Row(rows.r(PoseRows::QY));
    let gu = Row(rows.r(PoseRows::GU));
    let gv = Row(rows.r(PoseRows::GV));
    let iz = Row(rows.r(PoseRows::IZ));
    let zmask = Row(rows.r(PoseRows::ZMASK));

    // s = (qx*gu + qy*gv) >> RATIO_FRAC
    let t1 = p.mul_signed(qx, gu);
    let t2 = p.shr_bits(t1.into(), RATIO_FRAC);
    let t3 = p.mul_signed(qy, gv);
    let t4 = p.shr_bits(t3.into(), RATIO_FRAC);
    let s = p.add(t4.into(), t2.into());

    let mask_store = |p: &mut PimProgram, v: VReg, k: usize| {
        let n = p.sat_narrow(v.into(), 16);
        let m = p.and(n.into(), zmask);
        p.store(m, rows.r(PoseRows::J0) + k);
    };
    // J0 = (gu * iz) >> 12 ; J1 likewise ; J2 = -(s * iz) >> 12
    let j0 = p.mul_signed(gu, iz);
    let j0 = p.shr_bits(j0.into(), 12);
    mask_store(&mut p, j0, 0);
    let j1 = p.mul_signed(gv, iz);
    let j1 = p.shr_bits(j1.into(), 12);
    mask_store(&mut p, j1, 1);
    let j2 = p.mul_signed(s.into(), iz);
    let j2 = p.shr_bits(j2.into(), 12);
    let j2 = p.neg(j2.into());
    mask_store(&mut p, j2, 2);
    // J3 = -((qy*s >> 14) + gv)
    let j3 = p.mul_signed(qy, s.into());
    let j3 = p.shr_bits(j3.into(), RATIO_FRAC);
    let j3 = p.add(j3.into(), gv);
    let j3 = p.neg(j3.into());
    mask_store(&mut p, j3, 3);
    // J4 = (qx*s >> 14) + gu
    let j4 = p.mul_signed(qx, s.into());
    let j4 = p.shr_bits(j4.into(), RATIO_FRAC);
    let j4 = p.add(j4.into(), gu);
    mask_store(&mut p, j4, 4);
    // J5 = (qx*gv >> 14) - (qy*gu >> 14)
    let t5 = p.mul_signed(qx, gv);
    let t6 = p.shr_bits(t5.into(), RATIO_FRAC);
    let t7 = p.mul_signed(qy, gu);
    let t8 = p.shr_bits(t7.into(), RATIO_FRAC);
    let t9 = p.neg(t8.into());
    let j5 = p.add(t9.into(), t6.into());
    mask_store(&mut p, j5, 5);
    p
}

/// Hessian / steepest-descent / cost program at `W16` on the packed
/// Q14.2 Jacobians: 21 upper-triangle `J_i · J_k` products (Q28.4 →
/// Q29.3), six `J_i · r` products (Q26.6 → Q29.3) and the squared
/// residual (Q24.8), each folded by an in-array reduction. The 28
/// reduce results come back in exactly this order.
fn hessian_program(rows: &PoseRows) -> PimProgram {
    let mut p = PimProgram::new("pose_hessian");
    p.set_lanes(LaneWidth::W16, Signedness::Signed);
    let res = Row(rows.r(PoseRows::RES));
    for i in 0..6 {
        for k in i..6 {
            let v = p.mul_signed(Row(rows.r(PoseRows::J0) + i), Row(rows.r(PoseRows::J0) + k));
            let w = p.shr_bits(v.into(), 1); // Q28.4 -> Q29.3
            p.reduce(w.into());
        }
        let v = p.mul_signed(Row(rows.r(PoseRows::J0) + i), res);
        let w = p.shr_bits(v.into(), 3); // Q26.6 -> Q29.3
        p.reduce(w.into());
    }
    // cost partial: sum r^2 (Q24.8)
    let v = p.mul_signed(res, res);
    p.reduce(v.into());
    p
}

/// The five pose-estimation macro-op programs in submission order
/// (warp/projection, fractional weights, residual, Jacobian, Hessian),
/// built against staging rows at `base_row` for feature fraction `ff`.
///
/// This is the introspection entry point behind `examples/dump_ir.rs`
/// and the tier-1 golden-program snapshots: the returned programs are
/// exactly what [`run_batch`] lowers and executes, but detached from
/// any machine so they can be listed or lowered standalone (pair with
/// [`pose_scratch`]).
#[must_use]
pub fn pose_programs(base_row: usize, ff: u32, interp: Interp) -> Vec<PimProgram> {
    let rows = PoseRows::new(base_row);
    vec![
        warp_program(&rows, ff),
        frac_weights_program(&rows),
        residual_program(&rows, interp),
        jacobian_program(&rows),
        hessian_program(&rows),
    ]
}

/// The scratch-row pool the pose-program lowering spills into, for
/// staging rows at `base_row` — lowers [`pose_programs`] outside
/// [`run_batch`].
#[must_use]
pub fn pose_scratch(base_row: usize) -> ScratchRows {
    PoseRows::new(base_row).lower_scratch()
}

/// Output of one machine batch: everything the host needs to fold the
/// batch into the normal equations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutput {
    /// Warped pixel columns, Q10.6 raw, one per feature lane.
    pub u_raw: Vec<i64>,
    /// Warped pixel rows, Q10.6 raw.
    pub v_raw: Vec<i64>,
    /// Jacobian rows (Q14.2 raw), per feature lane.
    pub jacobians: Vec<[i64; 6]>,
    /// Residuals (Q12.4 raw), zero for masked-out lanes.
    pub residuals: Vec<i64>,
    /// Valid-lane flags (in front of the camera and inside the map).
    pub valid: Vec<bool>,
    /// Hessian partial sums of this batch (Q29.3 raw, from the in-array
    /// reduction).
    pub h_partial: [i64; 21],
    /// Steepest-descent partial sums (Q29.3 raw).
    pub b_partial: [i64; 6],
    /// Squared-residual partial sum (Q24.8 raw).
    pub cost_partial: i64,
}

/// Executes one batch (≤ [`BATCH`] features) of the pose-estimation
/// pipeline on the machine. `base_row` is the first of ~40 scratch rows
/// used for staging.
///
/// # Panics
///
/// Panics if more than [`BATCH`] features are supplied or the machine
/// lacks `base_row + 40` rows.
#[inline]
pub fn run_batch(
    m: &mut PimMachine,
    base_row: usize,
    feats: &[QFeature],
    pose: &QPose,
    kf: &QKeyframe,
    cam: &Pinhole,
) -> BatchOutput {
    exec_batch(
        m,
        base_row,
        feats,
        pose,
        kf,
        cam,
        Interp::Bilinear,
        BatchMapping::Opt,
        LoweredCache::global(),
    )
}

/// [`run_batch`] with an explicit residual-interpolation mode.
///
/// # Panics
///
/// Same conditions as [`run_batch`].
#[inline]
pub fn run_batch_with(
    m: &mut PimMachine,
    base_row: usize,
    feats: &[QFeature],
    pose: &QPose,
    kf: &QKeyframe,
    cam: &Pinhole,
    interp: Interp,
) -> BatchOutput {
    exec_batch(
        m,
        base_row,
        feats,
        pose,
        kf,
        cam,
        interp,
        BatchMapping::Opt,
        LoweredCache::global(),
    )
}

/// Single-batch core behind [`BatchRunner`] and the `run_batch*`
/// wrappers: executes one chunk of ≤ [`BATCH`] features with the given
/// interpolation and mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_batch(
    m: &mut PimMachine,
    base_row: usize,
    feats: &[QFeature],
    pose: &QPose,
    kf: &QKeyframe,
    cam: &Pinhole,
    interp: Interp,
    mapping: BatchMapping,
    cache: &LoweredCache,
) -> BatchOutput {
    assert!(feats.len() <= BATCH, "batch too large: {}", feats.len());
    assert!(
        base_row + PoseRows::LOWER + PoseRows::LOWER_LEN <= m.config().rows,
        "machine too small for pose rows"
    );
    let rows = PoseRows::new(base_row);
    let n = feats.len();
    let ff = feats.first().map(|f| f.frac).unwrap_or(12);
    let level = mapping.level();
    let scratch = rows.lower_scratch();

    // ---- host setup (I/O, not compute) --------------------------------
    m.set_lanes(LaneWidth::W32, Signedness::Signed);
    let av: Vec<i64> = feats.iter().map(|f| f.a as i64).collect();
    let bv: Vec<i64> = feats.iter().map(|f| f.b as i64).collect();
    let cv: Vec<i64> = feats.iter().map(|f| f.c as i64).collect();
    m.host_write_lanes(rows.r(PoseRows::A), &av)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::B), &bv)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::C), &cv)
        .expect("host I/O row in range");
    m.host_broadcast(rows.r(PoseRows::ONE), 1 << ff)
        .expect("host I/O row in range");
    for (k, &r) in pose.r.iter().enumerate() {
        m.host_broadcast(rows.r(PoseRows::POSE0 + k), r as i64)
            .expect("host I/O row in range");
    }
    // the homogeneous rotation column r*2 is pre-shifted by the host to
    // the warp accumulator format (a per-iteration constant)
    for (k, &t) in pose.t.iter().enumerate() {
        m.host_broadcast(rows.r(PoseRows::POSE0 + 9 + k), t as i64)
            .expect("host I/O row in range");
    }
    let f_q = (cam.f * (1 << PIX_FRAC) as f64).round() as i64;
    let cx_q = (cam.cx * (1 << PIX_FRAC) as f64).round() as i64;
    let cy_q = (cam.cy * (1 << PIX_FRAC) as f64).round() as i64;
    m.host_broadcast(rows.r(PoseRows::CONST_F), f_q)
        .expect("host I/O row in range");
    m.host_broadcast(rows.r(PoseRows::CONST_CX), cx_q)
        .expect("host I/O row in range");
    m.host_broadcast(rows.r(PoseRows::CONST_CY), cy_q)
        .expect("host I/O row in range");

    // ---- warp / projection / validity mask (Fig. 5-b) ------------------
    m.host_broadcast(rows.r(PoseRows::SCRATCH), 0)
        .expect("host I/O row in range");
    m.host_broadcast(rows.r(PoseRows::LOWHALF), 0xFFFF)
        .expect("host I/O row in range");
    let _ = run_pose_program(m, &warp_program(&rows, ff), level, &scratch, cache);

    // ---- residual / gradient gather (host-addressed) -------------------
    if interp == Interp::Bilinear {
        // fractional weights wu, wv (Q0.6): a single AND with 0x3F
        m.host_broadcast(rows.r(PoseRows::SCRATCH), (1 << PIX_FRAC) - 1)
            .expect("host I/O row in range");
        let _ = run_pose_program(m, &frac_weights_program(&rows), level, &scratch, cache);
    }

    let u_raw = m.host_read_lanes(rows.r(PoseRows::U));
    let v_raw = m.host_read_lanes(rows.r(PoseRows::V));
    let zmask = m.host_read_lanes(rows.r(PoseRows::ZMASK));
    let mut valid = vec![false; n];
    let mut d00 = vec![0i64; n];
    let mut d10 = vec![0i64; n];
    let mut d01 = vec![0i64; n];
    let mut d11 = vec![0i64; n];
    let mut gu = vec![0i64; n];
    let mut gv = vec![0i64; n];
    for i in 0..n {
        let in_front = zmask[i] != 0;
        match interp {
            Interp::Bilinear => {
                let x0 = u_raw[i] >> PIX_FRAC;
                let y0 = v_raw[i] >> PIX_FRAC;
                let wu = u_raw[i] & ((1 << PIX_FRAC) - 1);
                let wv = v_raw[i] & ((1 << PIX_FRAC) - 1);
                let in_map =
                    x0 >= 0 && y0 >= 0 && x0 + 1 < kf.width as i64 && y0 + 1 < kf.height as i64;
                valid[i] = in_front && in_map;
                if valid[i] {
                    let w = kf.width as usize;
                    let i00 = y0 as usize * w + x0 as usize;
                    d00[i] = kf.dt[i00] as i64;
                    d10[i] = kf.dt[i00 + 1] as i64;
                    d01[i] = kf.dt[i00 + w] as i64;
                    d11[i] = kf.dt[i00 + w + 1] as i64;
                    let xn = (x0 + i64::from(wu >= (1 << (PIX_FRAC - 1)))) as usize;
                    let yn = (y0 + i64::from(wv >= (1 << (PIX_FRAC - 1)))) as usize;
                    gu[i] = kf.gx[yn * w + xn] as i64;
                    gv[i] = kf.gy[yn * w + xn] as i64;
                }
            }
            Interp::Nearest => {
                let half = 1i64 << (PIX_FRAC - 1);
                let x = (u_raw[i] + half) >> PIX_FRAC;
                let y = (v_raw[i] + half) >> PIX_FRAC;
                let in_map = x >= 0 && y >= 0 && x < kf.width as i64 && y < kf.height as i64;
                valid[i] = in_front && in_map;
                if valid[i] {
                    let idx = y as usize * kf.width as usize + x as usize;
                    d00[i] = kf.dt[idx] as i64; // used directly as the residual
                    gu[i] = kf.gx[idx] as i64;
                    gv[i] = kf.gy[idx] as i64;
                }
            }
        }
    }
    // bilinear: three packed gathers per feature (two DT corner pairs +
    // interleaved gradients); nearest: two (DT + gradients)
    charge_gather(m, n, if interp == Interp::Bilinear { 3 } else { 2 });
    m.set_lanes(LaneWidth::W32, Signedness::Signed);
    m.host_write_lanes(rows.r(PoseRows::D00), &d00)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::D10), &d10)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::D01), &d01)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::D11), &d11)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::GU), &gu)
        .expect("host I/O row in range");
    m.host_write_lanes(rows.r(PoseRows::GV), &gv)
        .expect("host I/O row in range");

    if interp == Interp::Nearest {
        // the gathered values are the residuals; place them in RES
        m.host_write_lanes(rows.r(PoseRows::RES), &d00)
            .expect("host I/O row in range");
    }

    // residual: bilinear lerp pipeline (or the nearest staging copy),
    // with the validity mask folded in before the store — zeroed and
    // packed for the W16 hessian stage
    let _ = run_pose_program(m, &residual_program(&rows, interp), level, &scratch, cache);

    // ---- Jacobian (Fig. 5-d shared-subexpression pipeline) -------------
    // invalid lanes are masked branch-free: multiplying by the 0/-1 Z
    // mask would flip signs; instead each row is ANDed with it
    let _ = run_pose_program(m, &jacobian_program(&rows), level, &scratch, cache);

    // read back jacobians and residuals (host view for verification /
    // fast-path checks). The combined mask packed each lane into 16-bit
    // form (high half cleared), so the sign-correct view is the W16
    // one: every second 16-bit lane holds a feature's entry.
    m.set_lanes(LaneWidth::W16, Signedness::Signed);
    let mut jacobians = vec![[0i64; 6]; n];
    #[allow(clippy::needless_range_loop)] // k indexes both a machine row and a column
    for k in 0..6 {
        let lane_vals = m.host_read_lanes(rows.r(PoseRows::J0) + k);
        for (i, jac) in jacobians.iter_mut().enumerate() {
            jac[k] = if valid[i] { lane_vals[2 * i] } else { 0 };
        }
    }
    let res_lanes = m.host_read_lanes(rows.r(PoseRows::RES));
    let residuals: Vec<i64> = (0..n)
        .map(|i| if valid[i] { res_lanes[2 * i] } else { 0 })
        .collect();
    m.set_lanes(LaneWidth::W32, Signedness::Signed);
    // the map-validity masking above covers Z; the gather stage already
    // zeroed the corner/gradient rows for out-of-map lanes, so J rows of
    // such lanes are zero because gu = gv = 0 there.

    // ---- Hessian / steepest descent at W16 on packed Q14.2 -------------
    // (charged at half cost: two 80-feature half-batches pack one
    // 160-lane word line; see the module docs)
    let before = m.stats().clone();
    let sums = run_pose_program(m, &hessian_program(&rows), level, &scratch, cache);
    let mut h_partial = [0i64; 21];
    let mut b_partial = [0i64; 6];
    let mut it = sums.into_iter();
    for i in 0..6 {
        for k in i..6 {
            h_partial[tri_idx(i, k)] = it.next().expect("hessian reduce result");
        }
        b_partial[i] = it.next().expect("steepest-descent reduce result");
    }
    let cost_partial = it.next().expect("cost reduce result");
    // halve the hessian-stage charge: two 80-feature half-batches pack
    // one 160-lane word line, so each pays half of the traced stage.
    // try_since: counters restored from a checkpoint can sit below the
    // captured baseline; skip the retraction instead of panicking
    if let Some(hess) = m.stats().try_since(&before) {
        m.retract_stats(&hess.scaled_div(2));
    }

    if mapping == BatchMapping::Naive {
        charge_naive_extras(m, feats.len());
    }

    BatchOutput {
        u_raw: u_raw[..n].to_vec(),
        v_raw: v_raw[..n].to_vec(),
        jacobians,
        residuals,
        valid,
        h_partial,
        b_partial,
        cost_partial,
    }
}

/// Folds a batch output into a quantized normal-equation accumulator
/// using the in-array partial sums.
pub fn fold_batch(eq: &mut QNormalEquations, out: &BatchOutput) {
    let partial = QNormalEquations {
        h: out.h_partial,
        b: out.b_partial,
        cost: out.cost_partial,
        count: out.valid.iter().filter(|&&v| v).count(),
        hes_frac: eq.hes_frac,
        bits: eq.bits,
    };
    eq.merge(&partial);
}

/// Charges the serialized gather cost without touching array state
/// (the gathered tables are host-resident in this model).
fn charge_gather(m: &mut PimMachine, lanes: usize, tables: usize) {
    // issue a real gather against row 0 to keep the accounting inside
    // the machine's stats (values are discarded)
    let addrs: Vec<(usize, usize)> = (0..lanes * tables).map(|_| (0usize, 0usize)).collect();
    let _ = m.gather(&addrs);
}

/// Executes one batch with a **naive PIM mapping** of the
/// pose-estimation kernels — the comparison point of Fig. 9-b's `LM*`
/// group. Identical output values to [`run_batch`], but without the
/// paper's scheduling optimizations:
///
/// * no Tmp-Reg chaining: the same macro-op programs are lowered at
///   [`LowerLevel::Naive`], so every intermediate is written back to
///   SRAM and re-read by the consumer;
/// * no shared-subexpression pipeline (Fig. 5-d): the `s` term of the
///   Jacobian is charged as recomputed from scratch for J3, J4 and J5.
///
/// # Panics
///
/// Same conditions as [`run_batch`].
#[inline]
pub fn run_batch_naive(
    m: &mut PimMachine,
    base_row: usize,
    feats: &[QFeature],
    pose: &QPose,
    kf: &QKeyframe,
    cam: &Pinhole,
) -> BatchOutput {
    exec_batch(
        m,
        base_row,
        feats,
        pose,
        kf,
        cam,
        Interp::Bilinear,
        BatchMapping::Naive,
        LoweredCache::global(),
    )
}

/// Charges the naive-schedule costs the [`LowerLevel::Naive`] lowering
/// cannot express (the SRAM round-trips of every intermediate *are*
/// real at that level — only program-level rewrites are modeled here;
/// the values are identical by construction):
///
///  * no shared-subexpression pipeline (Fig. 5-d): the s term is
///    recomputed for J3/J4/J5 (3 x (2 muls + shift + add) at W32)
///    and the inverse-depth division is recomputed for J2/J3
///    (2 extra 32-bit fractional divisions);
///  * no gather packing: the DT corners and gradients are fetched
///    with one serialized access per element (6/feature instead of
///    the packed 3/feature).
fn charge_naive_extras(m: &mut PimMachine, n_feats: usize) {
    let s_recompute = 3 * (2 * 38 + 2);
    let div_recompute = 2 * 50;
    let unpacked_gathers = 3 * n_feats as u64;
    let mut extra = pimvo_pim::ExecStats::new();
    extra.cycles = s_recompute + div_recompute + unpacked_gathers;
    extra.acc_ops = s_recompute + div_recompute;
    extra.tmp_accesses = extra.acc_ops + unpacked_gathers;
    m.merge_extra_stats(&extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use crate::hessian::QNormalEquations;
    use crate::jacobian::jacobian_q;
    use crate::quant::RES_FRAC;
    use crate::warp::project_q;
    use pimvo_mcu::KeyframeTables;
    use pimvo_pim::ArrayConfig;
    use pimvo_vomath::{distance_transform, gradient_maps, SE3};

    fn test_kf(cam: &Pinhole) -> QKeyframe {
        let (w, h) = (320u32, 240u32);
        let mut mask = vec![0u8; (w * h) as usize];
        // a grid of edge sites
        for y in (8..h).step_by(16) {
            for x in (8..w).step_by(14) {
                mask[(y * w + x) as usize] = 255;
            }
        }
        let dt = distance_transform(&mask, w, h);
        let (grad_x, grad_y) = gradient_maps(&dt);
        QKeyframe::quantize(&KeyframeTables { dt, grad_x, grad_y }, cam)
    }

    fn test_features(cam: &Pinhole, n: usize) -> Vec<QFeature> {
        (0..n)
            .map(|i| {
                let u = 15.0 + (i % 30) as f64 * 9.7;
                let v = 12.0 + (i / 30) as f64 * 23.3;
                let d = 1.0 + (i % 11) as f64 * 0.45;
                let (a, b, c) = cam.inverse_depth_coords(u, v, d);
                QFeature::quantize(&Feature {
                    u,
                    v,
                    depth: d,
                    a,
                    b,
                    c,
                })
            })
            .collect()
    }

    #[test]
    fn machine_batch_matches_fast_path_exactly() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, 80);
        let pose = QPose::quantize(&SE3::exp(&[0.03, -0.02, 0.04, 0.015, -0.01, 0.02]));

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let out = run_batch(&mut m, 1280, &feats, &pose, &kf, &cam);

        for (i, f) in feats.iter().enumerate() {
            let fast = project_q(f, &pose, &cam);
            match fast {
                Some(w) => {
                    assert_eq!(out.u_raw[i], w.u_raw, "lane {i} u");
                    assert_eq!(out.v_raw[i], w.v_raw, "lane {i} v");
                    if out.valid[i] {
                        let (r, gu, gv) = kf
                            .lookup_q(w.u_raw, w.v_raw)
                            .expect("valid lane must be in map");
                        assert_eq!(out.residuals[i], r, "lane {i} residual");
                        let jf = jacobian_q(w.qx, w.qy, w.iz_real, gu as i64, gv as i64);
                        assert_eq!(out.jacobians[i], jf, "lane {i} jacobian");
                    }
                }
                None => assert!(!out.valid[i], "lane {i} should be masked"),
            }
        }
    }

    #[test]
    fn batch_partials_equal_per_feature_sums() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, 64);
        let pose = QPose::quantize(&SE3::exp(&[0.01, 0.02, -0.01, 0.0, 0.01, 0.0]));
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let out = run_batch(&mut m, 1280, &feats, &pose, &kf, &cam);

        // fold via in-array partials
        let mut eq_fold = QNormalEquations::zero();
        fold_batch(&mut eq_fold, &out);

        // accumulate per feature with the scalar path
        let mut eq_scalar = QNormalEquations::zero();
        for i in 0..feats.len() {
            eq_scalar.accumulate(&out.jacobians[i], out.residuals[i]);
        }
        // masked lanes contribute zero rows in both
        assert_eq!(eq_fold.h, eq_scalar.h);
        assert_eq!(eq_fold.b, eq_scalar.b);
        assert_eq!(eq_fold.cost, eq_scalar.cost);
        // counts: the scalar loop counted every feature, the fold only
        // valid lanes
        assert!(eq_fold.count <= eq_scalar.count);
    }

    #[test]
    fn batch_cost_is_data_independent() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let pose = QPose::quantize(&SE3::IDENTITY);

        let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = run_batch(&mut m1, 1280, &test_features(&cam, 80), &pose, &kf, &cam);
        let c1 = m1.stats().cycles;

        let pose2 = QPose::quantize(&SE3::exp(&[0.05, 0.0, -0.03, 0.02, 0.0, 0.01]));
        let mut m2 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let feats2: Vec<QFeature> = test_features(&cam, 80)
            .into_iter()
            .map(|mut f| {
                f.a = -f.a;
                f
            })
            .collect();
        let _ = run_batch(&mut m2, 1280, &feats2, &pose2, &kf, &cam);
        assert_eq!(
            c1,
            m2.stats().cycles,
            "op sequence must be data-independent"
        );
    }

    #[test]
    fn nearest_mode_matches_fast_path_exactly() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, 80);
        let pose = QPose::quantize(&SE3::exp(&[0.02, -0.01, 0.03, 0.01, -0.005, 0.015]));
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let out = run_batch_with(&mut m, 1280, &feats, &pose, &kf, &cam, Interp::Nearest);
        for (i, f) in feats.iter().enumerate() {
            if let Some(w) = project_q(f, &pose, &cam) {
                if out.valid[i] {
                    let (r, gu, gv) = kf
                        .lookup_with(w.u_raw, w.v_raw, Interp::Nearest)
                        .expect("valid lane in map");
                    assert_eq!(out.residuals[i], r, "lane {i} residual");
                    let jf = jacobian_q(w.qx, w.qy, w.iz_real, gu as i64, gv as i64);
                    assert_eq!(out.jacobians[i], jf, "lane {i} jacobian");
                }
            }
        }
    }

    #[test]
    fn nearest_mode_is_cheaper_than_bilinear() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, 80);
        let pose = QPose::quantize(&SE3::IDENTITY);
        let mut mb = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = run_batch_with(&mut mb, 1280, &feats, &pose, &kf, &cam, Interp::Bilinear);
        let mut mn = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = run_batch_with(&mut mn, 1280, &feats, &pose, &kf, &cam, Interp::Nearest);
        assert!(
            mn.stats().cycles < mb.stats().cycles,
            "{} vs {}",
            mn.stats().cycles,
            mb.stats().cycles
        );
    }

    #[test]
    fn sharded_submit_matches_sequential_batches() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, 200);
        let pose = QPose::quantize(&SE3::exp(&[0.02, -0.01, 0.03, 0.005, -0.002, 0.01]));

        let mut runner = BatchRunner::new(BatchOptions {
            pool: 3,
            ..Default::default()
        });
        let sharded = runner.submit(&feats, &pose, &kf, &cam).unwrap();

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let sequential: Vec<BatchOutput> = feats
            .chunks(BATCH)
            .map(|c| run_batch(&mut m, POSE_BASE, c, &pose, &kf, &cam))
            .collect();

        assert_eq!(sharded, sequential, "sharding must not change values");
        // the distributed compute work equals the sequential work exactly
        let merged = runner.pool().merged_stats();
        assert_eq!(merged.cycles, m.stats().cycles);
        assert_eq!(merged.acc_ops, m.stats().acc_ops);
        assert_eq!(merged.op_histogram, m.stats().op_histogram);
    }

    #[test]
    fn sharded_wall_cycles_are_sections_times_batch_cost() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        // 4 full batches on 2 arrays -> 2 barrier sections
        let feats = test_features(&cam, 4 * BATCH);
        let pose = QPose::quantize(&SE3::IDENTITY);

        let mut runner = BatchRunner::new(BatchOptions {
            pool: 2,
            ..Default::default()
        });
        let _ = runner.submit(&feats, &pose, &kf, &cam).unwrap();

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = run_batch(&mut m, POSE_BASE, &feats[..BATCH], &pose, &kf, &cam);
        // timeline = compute + host transfer cycles: the pool charges
        // strip I/O to the wall at each barrier
        let per_batch = m.timeline();

        assert_eq!(
            runner.pool().wall_cycles(),
            2 * (per_batch + runner.pool().sync_cycles())
        );
        assert_eq!(runner.pool().barriers(), 2);
    }

    #[test]
    fn naive_mapping_via_runner_matches_wrapper() {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = test_features(&cam, BATCH);
        let pose = QPose::quantize(&SE3::IDENTITY);

        let mut runner = BatchRunner::new(BatchOptions {
            mapping: BatchMapping::Naive,
            ..Default::default()
        });
        let outs = runner.submit(&feats, &pose, &kf, &cam).unwrap();

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let reference = run_batch_naive(&mut m, POSE_BASE, &feats, &pose, &kf, &cam);
        assert_eq!(outs, vec![reference]);
        assert_eq!(runner.pool().merged_stats().cycles, m.stats().cycles);
    }

    #[test]
    fn batch_cycle_cost_in_paper_regime() {
        // paper: ~58.9k cycles per LM iteration at ~4000 features
        // (50 batches) => ~1200-2400 cycles per 80-feature batch is the
        // right regime for our leaner trace
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let pose = QPose::quantize(&SE3::IDENTITY);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = run_batch(&mut m, 1280, &test_features(&cam, 80), &pose, &kf, &cam);
        let c = m.stats().cycles;
        assert!((800..4_000).contains(&c), "batch cycles {c}");
        let _ = RES_FRAC;
    }
}
