#![warn(missing_docs)]

//! `pimvo-core` — edge-based visual odometry (EBVO) accelerated on a
//! bit-parallel SRAM processing-in-memory architecture: the primary
//! contribution of the DAC'22 paper this workspace reproduces.
//!
//! The tracker follows Fig. 1 of the paper:
//!
//! 1. **Edge detection** on every input frame (LPF → HPF → NMS), run on
//!    the PIM array with the optimized lowering of the IR kernels in
//!    [`pimvo_kernels::ir`].
//! 2. **Keyframe tables**: the distance transform of the keyframe edge
//!    mask and its gradient maps, pre-computed so the warp residual and
//!    part of the Jacobian become lookups.
//! 3. **Pose estimation**: every current-frame feature is warped to the
//!    keyframe in quantized inverse-depth coordinates (features Q4.12,
//!    pose Q1.15), the Jacobian is evaluated in Q14.2 with the
//!    shared-subexpression pipeline of Fig. 5-d, the normal equations
//!    are reduced in 32-bit Q29.3, and a CPU-side Levenberg-Marquardt
//!    step solves the 6x6 system.
//!
//! Two interchangeable backends drive the pipeline:
//!
//! * [`FloatBackend`] — the PicoVO-class baseline: `f64` math with the
//!   MCU cost model of [`pimvo_mcu`];
//! * [`PimBackend`] — the quantized pipeline with PIM cycle/energy
//!   accounting (edge detection executes on the simulated array for
//!   real; pose estimation runs the value-exact fast path, with a
//!   machine-executed calibration batch proving the equivalence and
//!   providing the per-batch cycle cost — see [`pim_exec`]).
//!
//! ```
//! use pimvo_core::{Tracker, TrackerConfig, BackendKind};
//! use pimvo_kernels::{GrayImage, DepthImage};
//!
//! let config = TrackerConfig::default();
//! let mut tracker = Tracker::new(config, BackendKind::Pim);
//! let gray = GrayImage::from_fn(320, 240, |x, y| ((x ^ y) & 0xFF) as u8);
//! let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
//! let result = tracker.process_frame(&gray, &depth);
//! assert!(result.is_keyframe); // the first frame always is
//! ```

pub mod ablation;
mod backend;
pub mod checkpoint;
mod config;
mod feature;
mod hessian;
mod jacobian;
mod keyframe;
pub mod mapping;
pub mod pim_exec;
mod qmath;
mod quant;
pub mod supervisor;
mod tracker;
mod warp;

pub use backend::{BackendKind, BackendStats, FloatBackend, PimBackend, TrackerBackend};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use config::{KeyframePolicy, RecoveryConfig, TrackerConfig};
pub use feature::{extract_features, Feature};
pub use hessian::{accumulate_batch_q, QNormalEquations};
pub use jacobian::{jacobian_float, jacobian_q};
pub use keyframe::Keyframe;
pub use mapping::EdgeMap3d;
pub use quant::{Interp, QFeature, QKeyframe, QPose, GRAD_FRAC, PIX_FRAC, RES_FRAC};
pub use supervisor::{transition_legal, BudgetConfig, BudgetStatus, DegradeRung};
pub use tracker::{FrameResult, Tracker, TrackerBuilder, TrackingState};
pub use warp::{project_q, warp_float, warp_q, WarpQ};
