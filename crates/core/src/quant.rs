//! Quantized data types of the PIM pose-estimation pipeline (§3.3-3.4).

use crate::feature::Feature;
use crate::qmath::quantize;
use pimvo_mcu::KeyframeTables;
use pimvo_vomath::{Pinhole, SE3};

/// Fractional bits of feature coordinates (Q4.12, §3.3).
pub const FEAT_FRAC: u32 = 12;
/// Fractional bits of pose entries (Q1.15, §3.3).
pub const POSE_FRAC: u32 = 15;
/// Fractional bits of the warped `(X, Y, Z)` accumulators (Q5.27).
#[allow(dead_code)] // documents the intermediate format of the warp pipeline
pub const WARP_FRAC: u32 = FEAT_FRAC + POSE_FRAC;
/// Fractional bits of the projection ratio `X/Z` (Q2.14).
pub const RATIO_FRAC: u32 = 14;
/// Fractional bits of warped pixel coordinates (Q10.6).
pub const PIX_FRAC: u32 = 6;
/// Fractional bits of the pre-scaled gradients `f·I` and the Jacobian
/// entries (Q14.2, §3.4).
pub const GRAD_FRAC: u32 = 2;
/// Fractional bits of the distance-transform residual (Q12.4).
pub const RES_FRAC: u32 = 4;
/// Fractional bits of the Hessian / steepest-descent accumulators
/// (Q29.3, §3.4).
pub const HES_FRAC: u32 = 3;

/// Residual-lookup interpolation mode.
///
/// The paper says residuals are "directly looked-up" in the distance
/// transform, which reads as nearest-neighbour; its Q12.4 residual
/// format however implies sub-pixel values, and PicoVO-class systems
/// interpolate. Both are implemented; the ablation in
/// [`crate::ablation`] quantifies the difference (bilinear converges
/// measurably better at a modest gather/lerp cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interp {
    /// Bilinear residual with Q0.6 fixed-point lerps (default).
    #[default]
    Bilinear,
    /// Round-to-nearest lookup.
    Nearest,
}

/// A feature quantized to the inverse-depth coordinate format.
///
/// With the default Q4.12 the paper reports a warp error below one
/// pixel; [`QFeature::quantize_with`] exposes the fractional width for
/// the quantization ablation (8-bit features break tracking entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QFeature {
    /// `(u - cx)/f`, raw fixed-point.
    pub a: i32,
    /// `(v - cy)/f`, raw fixed-point.
    pub b: i32,
    /// `1/d`, raw fixed-point.
    pub c: i32,
    /// Fractional bits of `a`, `b`, `c`.
    pub frac: u32,
}

impl QFeature {
    /// Quantizes at the paper's Q4.12.
    pub fn quantize(f: &Feature) -> QFeature {
        Self::quantize_with(f, FEAT_FRAC, 16)
    }

    /// Quantizes with an explicit format (ablation support): `frac`
    /// fractional bits in a `bits`-wide word.
    pub fn quantize_with(f: &Feature, frac: u32, bits: u32) -> QFeature {
        QFeature {
            a: quantize(f.a, frac, bits) as i32,
            b: quantize(f.b, frac, bits) as i32,
            c: quantize(f.c, frac, bits) as i32,
            frac,
        }
    }
}

/// A relative pose quantized to Q1.15 (rotation entries and translation
/// all lie in `(-1, 1)` for keyframe-relative motion, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QPose {
    /// Rotation matrix entries, row-major, Q1.15.
    pub r: [i32; 9],
    /// Translation, Q1.15.
    pub t: [i32; 3],
}

impl QPose {
    /// Quantizes a relative pose. Entries outside `(-1, 1)` saturate —
    /// the keyframe policy keeps relative translations well inside.
    pub fn quantize(pose: &SE3) -> QPose {
        let m = pose.rotation.matrix().m;
        let q = |v: f64| quantize(v, POSE_FRAC, 16) as i32;
        QPose {
            r: [
                q(m[0][0]),
                q(m[0][1]),
                q(m[0][2]),
                q(m[1][0]),
                q(m[1][1]),
                q(m[1][2]),
                q(m[2][0]),
                q(m[2][1]),
                q(m[2][2]),
            ],
            t: [
                q(pose.translation.x),
                q(pose.translation.y),
                q(pose.translation.z),
            ],
        }
    }
}

/// Keyframe lookup tables quantized for the PIM: the distance
/// transform in Q12.4 and the gradient maps pre-scaled by the focal
/// length into the Jacobian's Q14.2 (so `f·I_u` is a single lookup).
#[derive(Debug, Clone)]
pub struct QKeyframe {
    /// Map width in pixels.
    pub width: u32,
    /// Map height in pixels.
    pub height: u32,
    /// Distance transform, Q12.4.
    pub dt: Vec<i16>,
    /// `f · ∂DT/∂u`, Q14.2.
    pub gx: Vec<i16>,
    /// `f · ∂DT/∂v`, Q14.2.
    pub gy: Vec<i16>,
}

impl QKeyframe {
    /// Quantizes keyframe tables for the camera `cam`.
    pub fn quantize(tables: &KeyframeTables, cam: &Pinhole) -> QKeyframe {
        let w = tables.dt.width();
        let h = tables.dt.height();
        let n = (w * h) as usize;
        let mut dt = Vec::with_capacity(n);
        let mut gx = Vec::with_capacity(n);
        let mut gy = Vec::with_capacity(n);
        for y in 0..h {
            for x in 0..w {
                let idx = (y * w + x) as usize;
                dt.push(quantize(tables.dt.get(x, y) as f64, RES_FRAC, 16) as i16);
                gx.push(quantize(cam.f * tables.grad_x[idx] as f64, GRAD_FRAC, 16) as i16);
                gy.push(quantize(cam.f * tables.grad_y[idx] as f64, GRAD_FRAC, 16) as i16);
            }
        }
        QKeyframe {
            width: w,
            height: h,
            dt,
            gx,
            gy,
        }
    }

    /// Lookup at quantized pixel coordinates (Q10.`PIX_FRAC` raw):
    /// **bilinear** residual (sub-pixel accuracy drives the tracking
    /// precision) with fixed-point Q0.6 weights and truncating lerps —
    /// exactly the arithmetic the PIM executes — and nearest-neighbour
    /// gradients. Returns `(residual Q12.4, f·Iu Q14.2, f·Iv Q14.2)` or
    /// `None` when the 2x2 interpolation support leaves the map.
    pub fn lookup_q(&self, u_raw: i64, v_raw: i64) -> Option<(i64, i16, i16)> {
        self.lookup_with(u_raw, v_raw, Interp::Bilinear)
    }

    /// [`QKeyframe::lookup_q`] with an explicit interpolation mode.
    pub fn lookup_with(&self, u_raw: i64, v_raw: i64, interp: Interp) -> Option<(i64, i16, i16)> {
        if interp == Interp::Nearest {
            let half = 1i64 << (PIX_FRAC - 1);
            let x = (u_raw + half) >> PIX_FRAC;
            let y = (v_raw + half) >> PIX_FRAC;
            if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
                return None;
            }
            let idx = (y as u32 * self.width + x as u32) as usize;
            return Some((self.dt[idx] as i64, self.gx[idx], self.gy[idx]));
        }
        let x0 = u_raw >> PIX_FRAC;
        let y0 = v_raw >> PIX_FRAC;
        let wu = u_raw & ((1 << PIX_FRAC) - 1);
        let wv = v_raw & ((1 << PIX_FRAC) - 1);
        if x0 < 0 || y0 < 0 || x0 + 1 >= self.width as i64 || y0 + 1 >= self.height as i64 {
            return None;
        }
        let w = self.width as i64;
        let i00 = (y0 * w + x0) as usize;
        let (d00, d10) = (self.dt[i00] as i64, self.dt[i00 + 1] as i64);
        let (d01, d11) = (
            self.dt[i00 + w as usize] as i64,
            self.dt[i00 + w as usize + 1] as i64,
        );
        let dx0 = d00 + (((d10 - d00) * wu) >> PIX_FRAC);
        let dx1 = d01 + (((d11 - d01) * wu) >> PIX_FRAC);
        let r = dx0 + (((dx1 - dx0) * wv) >> PIX_FRAC);
        // nearest pixel for the (smooth) gradient maps
        let xn = x0 + i64::from(wu >= (1 << (PIX_FRAC - 1)));
        let yn = y0 + i64::from(wv >= (1 << (PIX_FRAC - 1)));
        let inear = (yn * w + xn) as usize;
        Some((r, self.gx[inear], self.gy[inear]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_vomath::{distance_transform, gradient_maps};

    #[test]
    fn qfeature_roundtrip_within_lsb() {
        let f = Feature {
            u: 100.0,
            v: 80.0,
            depth: 2.0,
            a: -0.2245,
            b: -0.1491,
            c: 0.5,
        };
        let q = QFeature::quantize(&f);
        assert!((q.a as f64 / 4096.0 - f.a).abs() <= 0.5 / 4096.0);
        assert!((q.c as f64 / 4096.0 - f.c).abs() <= 0.5 / 4096.0);
        assert_eq!(q.frac, 12);
    }

    #[test]
    fn qpose_identity() {
        let q = QPose::quantize(&SE3::IDENTITY);
        // +1.0 saturates to the Q1.15 max
        assert_eq!(q.r[0], 32767);
        assert_eq!(q.r[1], 0);
        assert_eq!(q.r[4], 32767);
        assert_eq!(q.t, [0, 0, 0]);
    }

    #[test]
    fn qkeyframe_lookup_matches_tables() {
        let cam = Pinhole::qvga();
        let (w, h) = (32u32, 24u32);
        let mut mask = vec![0u8; (w * h) as usize];
        mask[(12 * w + 16) as usize] = 255;
        let dt = distance_transform(&mask, w, h);
        let (grad_x, grad_y) = gradient_maps(&dt);
        let tables = KeyframeTables { dt, grad_x, grad_y };
        let qk = QKeyframe::quantize(&tables, &cam);
        // at the site: zero residual
        let (r, _, _) = qk
            .lookup_q(16 << PIX_FRAC, 12 << PIX_FRAC)
            .expect("in bounds");
        assert_eq!(r, 0);
        // 3 px to the right: residual == 3 (Q12.4 raw 48)
        let (r, gx, _) = qk.lookup_q(19 << PIX_FRAC, 12 << PIX_FRAC).unwrap();
        assert_eq!(r, 3 << RES_FRAC);
        // gradient points away from the site, scaled by f
        assert!(gx as f64 / 4.0 > cam.f * 0.5);
        // out of bounds (the bilinear support needs x0 + 1 in the map)
        assert!(qk.lookup_q(-(1 << PIX_FRAC) * 2, 0).is_none());
        assert!(qk.lookup_q(31 << PIX_FRAC, 0).is_none());
        assert!(qk.lookup_q(30 << PIX_FRAC, 0).is_some());
    }

    #[test]
    fn lookup_interpolates_subpixel() {
        let cam = Pinhole::qvga();
        let (w, h) = (8u32, 8u32);
        let mut mask = vec![0u8; 64];
        mask[0] = 255;
        let dt = distance_transform(&mask, w, h);
        let (grad_x, grad_y) = gradient_maps(&dt);
        let qk = QKeyframe::quantize(&KeyframeTables { dt, grad_x, grad_y }, &cam);
        // along row 0 the DT is the distance to (0,0): at u = 2.5 px the
        // bilinear residual is 2.5 (Q12.4 raw 40)
        let u25 = (2 << PIX_FRAC) + (1 << (PIX_FRAC - 1));
        let (r25, ..) = qk.lookup_q(u25, 0).unwrap();
        assert_eq!(r25, (2 << RES_FRAC) + (1 << (RES_FRAC - 1)));
        // exact integer coordinate: exact DT value
        let (r2, ..) = qk.lookup_q(2 << PIX_FRAC, 0).unwrap();
        assert_eq!(r2, 2 << RES_FRAC);
    }
}
