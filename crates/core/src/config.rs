use pimvo_kernels::EdgeConfig;
use pimvo_vomath::{LmConfig, Pinhole};

/// When to promote the current frame to a new keyframe.
///
/// The Q1.15 pose quantization relies on keyframe-relative translations
/// staying well inside `(-1, 1)` m, so the policy bounds them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframePolicy {
    /// Maximum keyframe-relative translation (meters).
    pub max_translation: f64,
    /// Maximum keyframe-relative rotation (radians).
    pub max_rotation: f64,
    /// Minimum fraction of features that must land inside the keyframe
    /// image after warping; below this, switch keyframes.
    pub min_overlap: f64,
}

impl Default for KeyframePolicy {
    fn default() -> Self {
        KeyframePolicy {
            max_translation: 0.30,
            max_rotation: 0.30,
            min_overlap: 0.55,
        }
    }
}

/// Configuration of the EBVO tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Camera intrinsics.
    pub camera: Pinhole,
    /// Edge-detection thresholds.
    pub edge: EdgeConfig,
    /// LM solver configuration (the paper iterates within 10).
    pub lm: LmConfig,
    /// Keyframe promotion policy.
    pub keyframe: KeyframePolicy,
    /// Coarse-to-fine pyramid levels (1 = the paper's single-level
    /// tracking; 2-3 enlarge the convergence basin for faster motion at
    /// ~1/4 extra edge-detection cost per level).
    pub pyramid_levels: usize,
    /// Feature cap per frame (paper: 3000-6000 at QVGA).
    pub max_features: usize,
    /// Build the semi-dense 3D edge map (Fig. 8's reconstruction):
    /// keyframe features are lifted to world coordinates into an
    /// [`crate::EdgeMap3d`], retrievable via `Tracker::map`.
    pub build_map: bool,
    /// Voxel size (meters) for map deduplication.
    pub map_voxel_m: f64,
    /// Minimum usable depth, meters.
    pub min_depth: f64,
    /// Maximum usable depth, meters.
    pub max_depth: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            camera: Pinhole::qvga(),
            edge: EdgeConfig::default(),
            lm: LmConfig::default(),
            keyframe: KeyframePolicy::default(),
            pyramid_levels: 1,
            build_map: false,
            map_voxel_m: 0.02,
            max_features: 6000,
            min_depth: 0.3,
            max_depth: 7.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_q_format_ranges() {
        let c = TrackerConfig::default();
        // Q1.15 translation range
        assert!(c.keyframe.max_translation < 1.0);
        // Q4.12 inverse depth range: 1/min_depth < 8
        assert!(1.0 / c.min_depth < 8.0);
        assert!(c.max_features >= 3000);
    }
}
