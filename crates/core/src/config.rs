use crate::supervisor::BudgetConfig;
use pimvo_kernels::EdgeConfig;
use pimvo_vomath::{LmConfig, Pinhole};

/// When to promote the current frame to a new keyframe.
///
/// The Q1.15 pose quantization relies on keyframe-relative translations
/// staying well inside `(-1, 1)` m, so the policy bounds them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframePolicy {
    /// Maximum keyframe-relative translation (meters).
    pub max_translation: f64,
    /// Maximum keyframe-relative rotation (radians).
    pub max_rotation: f64,
    /// Minimum fraction of features that must land inside the keyframe
    /// image after warping; below this, switch keyframes.
    pub min_overlap: f64,
}

impl Default for KeyframePolicy {
    fn default() -> Self {
        KeyframePolicy {
            max_translation: 0.30,
            max_rotation: 0.30,
            min_overlap: 0.55,
        }
    }
}

/// Graceful-degradation thresholds of the tracker's
/// [`crate::TrackingState`] machine.
///
/// A frame is *bad* when the LM solve diverged, produced no residuals,
/// warped too few features into the keyframe, or left an implausibly
/// large mean residual. Bad frames fall back to the constant-velocity /
/// gyro motion prior instead of trusting the solver, and after
/// [`RecoveryConfig::max_bad_frames`] of them the tracker declares
/// itself Lost and re-seeds at the last keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Mean squared residual (pixels²) above which a solve is rejected
    /// as corrupted rather than merely poor.
    pub max_mean_residual: f64,
    /// Minimum fraction of extracted features that must contribute a
    /// residual; below it the alignment has too little support.
    pub min_valid_fraction: f64,
    /// Consecutive bad frames tolerated (coasting on the motion prior)
    /// before the state machine drops to Lost and re-seeds from the
    /// last keyframe.
    pub max_bad_frames: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_mean_residual: 1e4,
            min_valid_fraction: 0.15,
            max_bad_frames: 3,
        }
    }
}

/// Configuration of the EBVO tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Camera intrinsics.
    pub camera: Pinhole,
    /// Edge-detection thresholds.
    pub edge: EdgeConfig,
    /// LM solver configuration (the paper iterates within 10).
    pub lm: LmConfig,
    /// Keyframe promotion policy.
    pub keyframe: KeyframePolicy,
    /// Graceful-degradation thresholds (tracking-lost recovery).
    pub recovery: RecoveryConfig,
    /// Per-frame compute budget for the deadline supervisor. The
    /// default disables enforcement, in which case the tracker takes
    /// the exact unsupervised code path (bit-identical cycle/energy
    /// numbers). Excluded from the checkpoint config hash: it is a
    /// runtime QoS knob, not an estimator parameter.
    pub budget: BudgetConfig,
    /// Coarse-to-fine pyramid levels (1 = the paper's single-level
    /// tracking; 2-3 enlarge the convergence basin for faster motion at
    /// ~1/4 extra edge-detection cost per level).
    pub pyramid_levels: usize,
    /// Feature cap per frame (paper: 3000-6000 at QVGA).
    pub max_features: usize,
    /// Build the semi-dense 3D edge map (Fig. 8's reconstruction):
    /// keyframe features are lifted to world coordinates into an
    /// [`crate::EdgeMap3d`], retrievable via `Tracker::map`.
    pub build_map: bool,
    /// Voxel size (meters) for map deduplication.
    pub map_voxel_m: f64,
    /// Minimum usable depth, meters.
    pub min_depth: f64,
    /// Maximum usable depth, meters.
    pub max_depth: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            camera: Pinhole::qvga(),
            edge: EdgeConfig::default(),
            lm: LmConfig::default(),
            keyframe: KeyframePolicy::default(),
            recovery: RecoveryConfig::default(),
            budget: BudgetConfig::default(),
            pyramid_levels: 1,
            build_map: false,
            map_voxel_m: 0.02,
            max_features: 6000,
            min_depth: 0.3,
            max_depth: 7.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_q_format_ranges() {
        let c = TrackerConfig::default();
        // Q1.15 translation range
        assert!(c.keyframe.max_translation < 1.0);
        // Q4.12 inverse depth range: 1/min_depth < 8
        assert!(1.0 / c.min_depth < 8.0);
        assert!(c.max_features >= 3000);
    }
}
