//! Semi-dense 3D reconstruction — the "3D structural estimation" half
//! of the paper's title (Fig. 8 shows the reconstructed edge structure
//! alongside the trajectories).
//!
//! EBVO's map is the union of the keyframes' edge features lifted to
//! world coordinates: every edge pixel with a valid depth back-projects
//! through the keyframe pose. The builder deduplicates on a voxel grid
//! so revisited structure does not accumulate duplicates.

use crate::feature::Feature;
use pimvo_vomath::{Pinhole, Vec3, SE3};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A world-frame semi-dense edge map.
#[derive(Debug, Clone, Default)]
pub struct EdgeMap3d {
    points: Vec<Vec3>,
    /// Voxel grid occupancy for deduplication.
    occupied: HashSet<(i32, i32, i32)>,
    voxel: f64,
}

impl EdgeMap3d {
    /// Creates an empty map with the given deduplication voxel size
    /// (meters).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive voxel size.
    pub fn new(voxel_m: f64) -> Self {
        assert!(voxel_m > 0.0, "voxel size must be positive");
        EdgeMap3d {
            points: Vec::new(),
            occupied: HashSet::new(),
            voxel: voxel_m,
        }
    }

    /// Number of map points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The map points (world frame).
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// The deduplication voxel size (meters).
    pub fn voxel_m(&self) -> f64 {
        self.voxel
    }

    /// Rebuilds a map from a snapshot's point list: the voxel occupancy
    /// grid is reconstructed from the points themselves, so a
    /// checkpointed map deduplicates future integrations exactly as the
    /// original did. Returns `None` for a non-positive or non-finite
    /// voxel size.
    pub fn from_points(voxel_m: f64, points: Vec<Vec3>) -> Option<Self> {
        if !(voxel_m.is_finite() && voxel_m > 0.0) {
            return None;
        }
        let occupied = points
            .iter()
            .map(|p| {
                (
                    (p.x / voxel_m).floor() as i32,
                    (p.y / voxel_m).floor() as i32,
                    (p.z / voxel_m).floor() as i32,
                )
            })
            .collect();
        Some(EdgeMap3d {
            points,
            occupied,
            voxel: voxel_m,
        })
    }

    /// Integrates a keyframe's edge features: each feature back-projects
    /// to a world point through `pose_wk` (world-from-keyframe). Points
    /// landing in an occupied voxel are skipped. Returns how many points
    /// were added.
    pub fn integrate_keyframe(&mut self, features: &[Feature], pose_wk: &SE3) -> usize {
        let mut added = 0;
        for f in features {
            // camera-frame point: (a, b, 1) / c
            let p_cam = Vec3::new(f.a / f.c, f.b / f.c, 1.0 / f.c);
            let p_world = pose_wk.transform(p_cam);
            let key = (
                (p_world.x / self.voxel).floor() as i32,
                (p_world.y / self.voxel).floor() as i32,
                (p_world.z / self.voxel).floor() as i32,
            );
            if self.occupied.insert(key) {
                self.points.push(p_world);
                added += 1;
            }
        }
        added
    }

    /// Serializes the map as an ASCII PLY point cloud (viewable in
    /// MeshLab, CloudCompare, Open3D, …).
    pub fn to_ply(&self) -> String {
        let mut out = String::new();
        out.push_str("ply\nformat ascii 1.0\ncomment pimvo semi-dense edge map\n");
        writeln!(out, "element vertex {}", self.points.len()).expect("string write");
        out.push_str("property float x\nproperty float y\nproperty float z\nend_header\n");
        for p in &self.points {
            writeln!(out, "{:.4} {:.4} {:.4}", p.x, p.y, p.z).expect("string write");
        }
        out
    }

    /// Root-mean-square distance from the map points to their nearest
    /// neighbour in `reference` — a crude reconstruction-quality metric
    /// for tests (O(n·m); intended for small test clouds).
    pub fn rms_distance_to(&self, reference: &[Vec3]) -> f64 {
        assert!(!reference.is_empty(), "empty reference cloud");
        if self.points.is_empty() {
            return f64::INFINITY;
        }
        let sum2: f64 = self
            .points
            .iter()
            .map(|p| {
                reference
                    .iter()
                    .map(|r| (*p - *r).dot(*p - *r))
                    .fold(f64::MAX, f64::min)
            })
            .sum();
        (sum2 / self.points.len() as f64).sqrt()
    }
}

/// Convenience: lifts a frame's features through a camera pose into an
/// existing map (used by the tracker driver loops in examples/benches).
pub fn integrate_frame(
    map: &mut EdgeMap3d,
    features: &[Feature],
    pose_wc: &SE3,
    _cam: &Pinhole,
) -> usize {
    map.integrate_keyframe(features, pose_wc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature(cam: &Pinhole, u: f64, v: f64, d: f64) -> Feature {
        let (a, b, c) = cam.inverse_depth_coords(u, v, d);
        Feature {
            u,
            v,
            depth: d,
            a,
            b,
            c,
        }
    }

    #[test]
    fn backprojection_reproduces_known_geometry() {
        let cam = Pinhole::qvga();
        let mut map = EdgeMap3d::new(0.01);
        // a feature on the optical axis at 2 m, identity pose
        let f = feature(&cam, cam.cx, cam.cy, 2.0);
        map.integrate_keyframe(&[f], &SE3::IDENTITY);
        assert_eq!(map.len(), 1);
        let p = map.points()[0];
        assert!((p - Vec3::new(0.0, 0.0, 2.0)).norm() < 1e-9, "{p:?}");
    }

    #[test]
    fn keyframe_pose_moves_points_to_world() {
        let cam = Pinhole::qvga();
        let mut map = EdgeMap3d::new(0.01);
        let pose = SE3::exp(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let f = feature(&cam, cam.cx, cam.cy, 3.0);
        map.integrate_keyframe(&[f], &pose);
        let p = map.points()[0];
        assert!((p - Vec3::new(1.0, 0.0, 3.0)).norm() < 1e-9, "{p:?}");
    }

    #[test]
    fn voxel_grid_deduplicates() {
        let cam = Pinhole::qvga();
        let mut map = EdgeMap3d::new(0.05);
        let f = feature(&cam, 100.0, 80.0, 2.0);
        let added1 = map.integrate_keyframe(&[f], &SE3::IDENTITY);
        let added2 = map.integrate_keyframe(&[f], &SE3::IDENTITY);
        assert_eq!(added1, 1);
        assert_eq!(added2, 0);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn ply_output_is_well_formed() {
        let cam = Pinhole::qvga();
        let mut map = EdgeMap3d::new(0.01);
        for i in 0..5 {
            map.integrate_keyframe(
                &[feature(&cam, 50.0 + i as f64 * 30.0, 100.0, 1.5)],
                &SE3::IDENTITY,
            );
        }
        let ply = map.to_ply();
        assert!(ply.starts_with("ply\nformat ascii 1.0"));
        assert!(ply.contains("element vertex 5"));
        assert_eq!(ply.lines().count(), 8 + 5); // 8 header lines + 5 vertices
    }

    #[test]
    fn rms_distance_metric() {
        let cam = Pinhole::qvga();
        let mut map = EdgeMap3d::new(0.001);
        map.integrate_keyframe(&[feature(&cam, cam.cx, cam.cy, 2.0)], &SE3::IDENTITY);
        let reference = vec![Vec3::new(0.0, 0.0, 2.1)];
        assert!((map.rms_distance_to(&reference) - 0.1).abs() < 1e-9);
    }
}
