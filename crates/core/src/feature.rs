//! Edge-feature extraction (Fig. 5-a).

use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_vomath::Pinhole;

/// A 3D edge feature in inverse-depth coordinates on its anchor frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feature {
    /// Pixel column on the anchor frame.
    pub u: f64,
    /// Pixel row on the anchor frame.
    pub v: f64,
    /// Depth in meters.
    pub depth: f64,
    /// `(u - cx) / f`.
    pub a: f64,
    /// `(v - cy) / f`.
    pub b: f64,
    /// Inverse depth `1 / d`.
    pub c: f64,
}

/// Extracts features from an edge mask + depth image: every edge pixel
/// with a valid depth in `[min_depth, max_depth]` becomes a feature;
/// when more than `max_features` qualify, a uniform subsample is taken
/// (deterministic striding, preserving spatial coverage).
///
/// # Panics
///
/// Panics if the mask and depth dimensions differ.
pub fn extract_features(
    mask: &GrayImage,
    depth: &DepthImage,
    cam: &Pinhole,
    max_features: usize,
    min_depth: f64,
    max_depth: f64,
) -> Vec<Feature> {
    assert_eq!(mask.width(), depth.width(), "mask/depth width mismatch");
    assert_eq!(mask.height(), depth.height(), "mask/depth height mismatch");
    let mut candidates = Vec::new();
    for y in 0..mask.height() {
        for x in 0..mask.width() {
            if mask.get(x, y) == 0 {
                continue;
            }
            let d = depth.get(x, y) as f64;
            if !(min_depth..=max_depth).contains(&d) {
                continue;
            }
            let (a, b, c) = cam.inverse_depth_coords(x as f64, y as f64, d);
            candidates.push(Feature {
                u: x as f64,
                v: y as f64,
                depth: d,
                a,
                b,
                c,
            });
        }
    }
    if candidates.len() <= max_features {
        return candidates;
    }
    // uniform stride subsample (keeps spatial distribution)
    let stride = candidates.len() as f64 / max_features as f64;
    (0..max_features)
        .map(|i| candidates[(i as f64 * stride) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_mask_with_n(w: u32, h: u32, n: u32) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        let mut placed = 0;
        'outer: for y in (2..h - 2).step_by(3) {
            for x in (2..w - 2).step_by(3) {
                if placed >= n {
                    break 'outer;
                }
                img.set(x, y, 255);
                placed += 1;
            }
        }
        img
    }

    #[test]
    fn extracts_all_when_under_cap() {
        let cam = Pinhole::qvga();
        let mask = edge_mask_with_n(320, 240, 100);
        let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
        let feats = extract_features(&mask, &depth, &cam, 6000, 0.3, 8.0);
        assert_eq!(feats.len(), 100);
        let f = &feats[0];
        assert!((f.c - 0.5).abs() < 1e-12);
        assert!((f.a - (f.u - cam.cx) / cam.f).abs() < 1e-12);
    }

    #[test]
    fn subsamples_when_over_cap() {
        let cam = Pinhole::qvga();
        let mask = edge_mask_with_n(320, 240, 5000);
        let depth = DepthImage::from_fn(320, 240, |_, _| 1.5);
        let feats = extract_features(&mask, &depth, &cam, 1000, 0.3, 8.0);
        assert_eq!(feats.len(), 1000);
        // spatial coverage preserved: both early and late rows present
        assert!(feats.first().unwrap().v < 40.0);
        assert!(feats.last().unwrap().v > 100.0);
    }

    #[test]
    fn rejects_invalid_depth() {
        let cam = Pinhole::qvga();
        let mut mask = GrayImage::new(16, 16);
        mask.set(4, 4, 255);
        mask.set(8, 8, 255);
        mask.set(12, 12, 255);
        let mut depth = DepthImage::new(16, 16);
        depth.set(4, 4, 2.0); // valid
        depth.set(8, 8, 0.0); // invalid
        depth.set(12, 12, 20.0); // too far
        let feats = extract_features(&mask, &depth, &cam, 100, 0.3, 8.0);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].u, 4.0);
    }
}
