//! The Hessian / steepest-descent kernel (§3.4): `H += Jᵀ J` and
//! `b += Jᵀ r` accumulated in 32-bit Q29.3 — the paper's finding is
//! that 16-bit accumulators break the LM solver while Q29.3 tracks as
//! well as float.

use crate::qmath::sat32;
use crate::quant::{GRAD_FRAC, HES_FRAC, RES_FRAC};
use pimvo_vomath::NormalEquations;

/// Quantized normal equations: the 21 unique entries of the symmetric
/// 6x6 Hessian and the 6-vector `b`, in Q29.3 raw values clamped to
/// 32 bits after every accumulation (hardware accumulator semantics),
/// plus the (host-side) squared-residual cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QNormalEquations {
    /// Upper-triangular Hessian entries, row-major: `h[idx(i,j)]`,
    /// Q29.3 raw.
    pub h: [i64; 21],
    /// Steepest-descent vector, Q29.3 raw.
    pub b: [i64; 6],
    /// Total squared residual, Q(2*RES_FRAC) raw (64-bit host scalar).
    pub cost: i64,
    /// Number of accumulated residuals.
    pub count: usize,
    /// Fractional bits used for `h` and `b` (Q29.`hes_frac`); exposed
    /// for the quantization ablation (the paper shows 16-bit fails).
    pub hes_frac: u32,
    /// Accumulator width in bits (32 in the paper; 16 in the failing
    /// ablation).
    pub bits: u32,
}

/// Index into the packed upper triangle (`i <= j`).
#[inline]
pub fn tri_idx(i: usize, j: usize) -> usize {
    debug_assert!(i <= j && j < 6);
    i * 6 + j - i * (i + 1) / 2
}

impl QNormalEquations {
    /// Empty accumulator at the paper's Q29.3 / 32-bit configuration.
    pub fn zero() -> Self {
        Self::zero_with(HES_FRAC, 32)
    }

    /// Empty accumulator with explicit format (ablation support).
    pub fn zero_with(hes_frac: u32, bits: u32) -> Self {
        QNormalEquations {
            h: [0; 21],
            b: [0; 6],
            cost: 0,
            count: 0,
            hes_frac,
            bits,
        }
    }

    /// Accumulates one feature's Jacobian row (Q14.2 raw) and residual
    /// (Q12.4 raw).
    ///
    /// Products `J·J` are Q28.4; they are rescaled to the accumulator
    /// format and added with saturation at the accumulator width.
    pub fn accumulate(&mut self, j: &[i64; 6], r: i64) {
        let jj_shift = (2 * GRAD_FRAC) as i64 - self.hes_frac as i64;
        let jr_shift = (GRAD_FRAC + RES_FRAC) as i64 - self.hes_frac as i64;
        for i in 0..6 {
            for k in i..6 {
                let p = rescale(j[i] * j[k], jj_shift);
                let idx = tri_idx(i, k);
                self.h[idx] = self.clamp(self.h[idx] + p);
            }
            let p = rescale(j[i] * r, jr_shift);
            self.b[i] = self.clamp(self.b[i] + p);
        }
        self.cost += r * r;
        self.count += 1;
    }

    fn clamp(&self, v: i64) -> i64 {
        if self.bits >= 32 {
            sat32(v)
        } else {
            let max = (1i64 << (self.bits - 1)) - 1;
            v.clamp(-max - 1, max)
        }
    }

    /// Merges another accumulator (batch partials).
    pub fn merge(&mut self, other: &QNormalEquations) {
        for i in 0..21 {
            self.h[i] = self.clamp(self.h[i] + other.h[i]);
        }
        for i in 0..6 {
            self.b[i] = self.clamp(self.b[i] + other.b[i]);
        }
        self.cost += other.cost;
        self.count += other.count;
    }

    /// Converts to float normal equations for the CPU-side 6x6 solve.
    #[allow(clippy::needless_range_loop)] // (i, j) index pairs mirror the math
    pub fn to_normal_equations(&self) -> NormalEquations {
        let s = 1.0 / (1i64 << self.hes_frac) as f64;
        let mut h = [[0.0; 6]; 6];
        let mut b = [0.0; 6];
        for i in 0..6 {
            for j in i..6 {
                let v = self.h[tri_idx(i, j)] as f64 * s;
                h[i][j] = v;
                h[j][i] = v;
            }
            b[i] = self.b[i] as f64 * s;
        }
        NormalEquations {
            h,
            b,
            cost: self.cost as f64 / (1i64 << (2 * RES_FRAC)) as f64,
            count: self.count,
        }
    }
}

impl Default for QNormalEquations {
    fn default() -> Self {
        Self::zero()
    }
}

/// Rescale by a signed right-shift amount (negative = left shift).
#[inline]
fn rescale(v: i64, shift: i64) -> i64 {
    if shift >= 0 {
        v >> shift
    } else {
        v << (-shift)
    }
}

/// Accumulates a whole batch of Jacobian rows and residuals.
pub fn accumulate_batch_q(eq: &mut QNormalEquations, rows: &[[i64; 6]], residuals: &[i64]) {
    assert_eq!(rows.len(), residuals.len(), "rows/residuals mismatch");
    for (j, &r) in rows.iter().zip(residuals) {
        eq.accumulate(j, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_indexing_covers_21() {
        let mut seen = [false; 21];
        for i in 0..6 {
            for j in i..6 {
                let idx = tri_idx(i, j);
                assert!(!seen[idx], "duplicate index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn accumulation_matches_float_reference() {
        let mut q = QNormalEquations::zero();
        let mut f = NormalEquations::zero();
        let rows_q = [
            [400i64, -200, 100, 50, -300, 8],
            [120, 340, -80, -260, 90, -44],
        ];
        let res_q = [48i64, -32]; // Q12.4: 3.0, -2.0
        for (jq, &rq) in rows_q.iter().zip(&res_q) {
            q.accumulate(jq, rq);
            let jf: [f64; 6] = std::array::from_fn(|i| jq[i] as f64 / 4.0);
            f.accumulate(&jf, rq as f64 / 16.0, 1.0);
        }
        let qf = q.to_normal_equations();
        for i in 0..6 {
            for j in 0..6 {
                let err = (qf.h[i][j] - f.h[i][j]).abs();
                // Q29.3 resolution: 1/8 per product, 2 products
                assert!(err <= 0.25 + 1e-9, "h[{i}][{j}] err {err}");
            }
            assert!((qf.b[i] - f.b[i]).abs() <= 0.25 + 1e-9);
        }
        assert!((qf.cost - f.cost).abs() < 1e-9);
        assert_eq!(qf.count, 2);
    }

    #[test]
    fn thirty_two_bit_handles_full_feature_load() {
        // 4000 features with strong gradients must not saturate Q29.3
        // (the format is tight: the paper's 32-bit choice is the
        // minimum that survives a full feature load)
        let mut q = QNormalEquations::zero();
        let row = [800i64, 800, 400, 1000, 1000, 300]; // ~200-250 in f·I scale
        for _ in 0..4000 {
            q.accumulate(&row, 80);
        }
        let max_h = (1i64 << 31) - 1;
        assert!(q.h.iter().all(|&h| h.abs() < max_h), "saturated");
        let f = q.to_normal_equations();
        // J1^2 = 200^2 * 4000 = 1.6e8: check one diagonal value
        assert!((f.h[0][0] - 200.0 * 200.0 * 4000.0).abs() / f.h[0][0] < 0.01);
    }

    #[test]
    fn sixteen_bit_accumulator_saturates() {
        // the paper's failing ablation: 16-bit H overflows immediately
        let mut q = QNormalEquations::zero_with(HES_FRAC, 16);
        let row = [800i64, 0, 0, 0, 0, 0];
        for _ in 0..100 {
            q.accumulate(&row, 16);
        }
        assert_eq!(q.h[0], 32767, "16-bit accumulator must saturate");
    }

    #[test]
    fn merge_combines_batches() {
        let mut a = QNormalEquations::zero();
        let mut b = QNormalEquations::zero();
        a.accumulate(&[4, 0, 0, 0, 0, 0], 16);
        b.accumulate(&[4, 0, 0, 0, 0, 0], 16);
        let mut m = QNormalEquations::zero();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.count, 2);
        assert_eq!(m.h[0], 2 * a.h[0]);
        assert_eq!(m.cost, 2 * a.cost);
    }
}
