//! Deadline supervision: per-frame compute budgets and the graceful
//! degradation ladder.
//!
//! The paper's pitch is *real-time* EBVO under a hard latency envelope;
//! this module is the layer that enforces it. A [`BudgetConfig`] gives
//! each frame a budget in PIM/backend cycles and/or wall time. The
//! tracker checks the spend at its phase boundaries (pyramid → edge
//! detection + features → alignment) and, when the budget is at risk,
//! sheds work in the fixed [`DegradeRung`] order. The rung actually
//! used is recorded in every [`crate::FrameResult`] and exported as
//! telemetry gauges; overruns emit a typed
//! [`pimvo_telemetry::EventKind::DeadlineMiss`] event.
//!
//! With the budget disabled (the default) none of this runs: the
//! tracker takes the exact pre-supervision code path, so cycle and
//! energy numbers are bit-identical — asserted by the test-suite.

use crate::tracker::TrackingState;
use pimvo_telemetry::{EventKind, Telemetry};

/// One rung of the degradation ladder, in escalation order. Each rung
/// includes the shedding of every rung above it (e.g.
/// `SkipNmsRefinement` also caps LM iterations and the feature count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeRung {
    /// Full-quality processing; nothing shed.
    #[default]
    Full,
    /// LM iterations capped at [`BudgetConfig::capped_lm_iterations`].
    CapLmIterations,
    /// Feature cap divided by [`BudgetConfig::feature_divisor`].
    ReduceFeatures,
    /// Edge detection skips the NMS refinement pass: the mask is the
    /// thresholded HPF response (LPF + HPF cycles only).
    SkipNmsRefinement,
    /// The frame is not aligned at all: the pose coasts on the motion
    /// prior (gyro rotation when available, constant velocity
    /// otherwise) and the tracker reports `Degraded`.
    Coast,
}

impl DegradeRung {
    /// All rungs, in escalation order.
    pub const LADDER: [DegradeRung; 5] = [
        DegradeRung::Full,
        DegradeRung::CapLmIterations,
        DegradeRung::ReduceFeatures,
        DegradeRung::SkipNmsRefinement,
        DegradeRung::Coast,
    ];

    /// Ladder position (0 = `Full` … 4 = `Coast`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Rung from a ladder position, clamping past the end.
    pub fn from_index(i: usize) -> DegradeRung {
        *Self::LADDER.get(i).unwrap_or(&DegradeRung::Coast)
    }

    /// One rung harsher (saturating at `Coast`).
    pub fn escalate(self) -> DegradeRung {
        Self::from_index(self.index() + 1)
    }

    /// One rung gentler (saturating at `Full`).
    pub fn relax(self) -> DegradeRung {
        Self::from_index(self.index().saturating_sub(1))
    }

    /// Stable lower-snake-case name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradeRung::Full => "full",
            DegradeRung::CapLmIterations => "cap_lm_iterations",
            DegradeRung::ReduceFeatures => "reduce_features",
            DegradeRung::SkipNmsRefinement => "skip_nms_refinement",
            DegradeRung::Coast => "coast",
        }
    }
}

/// Per-frame compute budget. `Default` disables enforcement entirely.
///
/// Budgets compose: a frame misses its deadline when it exceeds the
/// cycle budget *or* the wall-time budget, whichever is configured.
/// Cycle budgets are fully deterministic (they read the backend's
/// simulated cycle counters); wall budgets depend on the host and are
/// meant for interactive use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetConfig {
    /// Backend cycles allowed per frame (`None` = no cycle budget).
    pub cycles_per_frame: Option<u64>,
    /// Host wall time allowed per frame, nanoseconds (`None` = no wall
    /// budget).
    pub wall_ns_per_frame: Option<u64>,
    /// A frame spending less than this fraction of its budget lets the
    /// ladder relax one rung for the next frame (hysteresis so the
    /// controller does not oscillate on the miss boundary).
    pub relax_fraction: f64,
    /// LM iteration cap at [`DegradeRung::CapLmIterations`] and below.
    pub capped_lm_iterations: usize,
    /// Feature-cap divisor at [`DegradeRung::ReduceFeatures`] and below.
    pub feature_divisor: usize,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            cycles_per_frame: None,
            wall_ns_per_frame: None,
            relax_fraction: 0.5,
            capped_lm_iterations: 3,
            feature_divisor: 4,
        }
    }
}

impl BudgetConfig {
    /// True when any budget is configured.
    pub fn enabled(&self) -> bool {
        self.cycles_per_frame.is_some() || self.wall_ns_per_frame.is_some()
    }
}

/// Point-in-time budget status of a tracker, from
/// [`crate::Tracker::budget_status`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetStatus {
    /// Rung the *next* frame will start at.
    pub rung: DegradeRung,
    /// Rung the last completed frame ran at (after any mid-frame
    /// escalation).
    pub last_rung: DegradeRung,
    /// Backend cycles the last completed frame spent.
    pub last_frame_cycles: u64,
    /// Cycle headroom of the last frame: `budget - spent` (negative on
    /// an overrun; `None` without a cycle budget).
    pub headroom_cycles: Option<i64>,
    /// Deadline misses so far.
    pub deadline_misses: u64,
    /// Frames the supervisor coasted (rung `Coast`, whether scheduled
    /// or escalated mid-frame).
    pub coasted_frames: u64,
}

/// The deadline supervisor a [`crate::Tracker`] embeds: a deterministic
/// ladder controller plus miss accounting.
///
/// Per frame:
/// 1. [`DeadlineSupervisor::begin_frame`] returns the rung to run at
///    (chosen from the previous frame's outcome — deterministic,
///    feedback-controlled).
/// 2. The tracker calls [`DeadlineSupervisor::over_cycle_budget`] at
///    each phase boundary; once the spend crosses the budget the frame
///    escalates straight to [`DegradeRung::Coast`], so an overrun is
///    bounded by the cost of the one phase that was already running.
/// 3. [`DeadlineSupervisor::end_frame`] records the outcome, emits the
///    `DeadlineMiss` event / gauges, and moves the ladder: one rung
///    harsher after a miss, one rung gentler after a frame that used
///    less than [`BudgetConfig::relax_fraction`] of its budget.
#[derive(Debug, Clone)]
pub struct DeadlineSupervisor {
    config: BudgetConfig,
    rung: DegradeRung,
    last_rung: DegradeRung,
    last_frame_cycles: u64,
    deadline_misses: u64,
    coasted_frames: u64,
}

impl DeadlineSupervisor {
    /// Creates the supervisor from a budget configuration.
    pub fn new(config: BudgetConfig) -> Self {
        DeadlineSupervisor {
            config,
            rung: DegradeRung::Full,
            last_rung: DegradeRung::Full,
            last_frame_cycles: 0,
            deadline_misses: 0,
            coasted_frames: 0,
        }
    }

    /// True when any budget is configured; when false the tracker must
    /// not call into the supervisor at all (bit-identity with the
    /// unsupervised pipeline).
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// The active budget configuration.
    pub fn config(&self) -> &BudgetConfig {
        &self.config
    }

    /// Replaces the budget at runtime (QoS knob; does not reset the
    /// ladder or the miss counters).
    pub fn set_config(&mut self, config: BudgetConfig) {
        self.config = config;
        if !self.config.enabled() {
            self.rung = DegradeRung::Full;
        }
    }

    /// Rung the next frame starts at.
    pub fn begin_frame(&self) -> DegradeRung {
        self.rung
    }

    /// Phase-boundary check: true once `spent_cycles` has crossed the
    /// cycle budget, at which point the frame must stop starting phases
    /// and coast.
    pub fn over_cycle_budget(&self, spent_cycles: u64) -> bool {
        matches!(self.config.cycles_per_frame, Some(b) if spent_cycles > b)
    }

    /// Wall-time variant of [`DeadlineSupervisor::over_cycle_budget`].
    pub fn over_wall_budget(&self, spent_ns: u64) -> bool {
        matches!(self.config.wall_ns_per_frame, Some(b) if spent_ns > b)
    }

    /// Records a completed frame: `rung` is the rung the frame actually
    /// ran at (after mid-frame escalation), `spent_cycles`/`spent_ns`
    /// what it cost. Updates the ladder for the next frame, bumps the
    /// miss counters and emits the telemetry gauges and the typed
    /// `DeadlineMiss` event. Returns true when the frame missed its
    /// deadline.
    pub fn end_frame(
        &mut self,
        rung: DegradeRung,
        spent_cycles: u64,
        spent_ns: u64,
        frame_index: usize,
        telemetry: &Telemetry,
    ) -> bool {
        self.last_rung = rung;
        self.last_frame_cycles = spent_cycles;
        if rung == DegradeRung::Coast {
            self.coasted_frames += 1;
        }
        let cycle_miss = self.over_cycle_budget(spent_cycles);
        let wall_miss = self.over_wall_budget(spent_ns);
        let miss = cycle_miss || wall_miss;

        // deterministic ladder feedback: harsher after a miss, gentler
        // after a comfortably cheap frame, otherwise hold
        let prev = self.rung;
        if miss {
            self.rung = rung.escalate();
            self.deadline_misses += 1;
        } else {
            let comfortable = match self.config.cycles_per_frame {
                Some(b) => (spent_cycles as f64) < self.config.relax_fraction * (b as f64),
                // wall-only budgets relax on any met deadline
                None => true,
            };
            if comfortable {
                self.rung = rung.relax();
            } else {
                self.rung = rung;
            }
        }

        if telemetry.is_enabled() {
            if let Some(b) = self.config.cycles_per_frame {
                telemetry.gauge_set(
                    "pimvo_budget_headroom_cycles",
                    b as f64 - spent_cycles as f64,
                );
            }
            telemetry.gauge_set("pimvo_degrade_rung", rung.index() as f64);
            if miss {
                telemetry.counter_add("pimvo_deadline_miss_total", 1.0);
                telemetry.event(
                    EventKind::DeadlineMiss,
                    &[
                        ("frame", frame_index.to_string()),
                        ("rung", rung.name().to_string()),
                        ("spent_cycles", spent_cycles.to_string()),
                        (
                            "budget_cycles",
                            self.config
                                .cycles_per_frame
                                .map_or("none".to_string(), |b| b.to_string()),
                        ),
                        ("wall_miss", wall_miss.to_string()),
                    ],
                );
            }
            if self.rung != prev {
                telemetry.event(
                    EventKind::DegradeRungChanged,
                    &[
                        ("from", prev.name().to_string()),
                        ("to", self.rung.name().to_string()),
                    ],
                );
            }
        }
        miss
    }

    /// Point-in-time status for reports and the chaos harness.
    pub fn status(&self) -> BudgetStatus {
        BudgetStatus {
            rung: self.rung,
            last_rung: self.last_rung,
            last_frame_cycles: self.last_frame_cycles,
            headroom_cycles: self
                .config
                .cycles_per_frame
                .map(|b| b as i64 - self.last_frame_cycles as i64),
            deadline_misses: self.deadline_misses,
            coasted_frames: self.coasted_frames,
        }
    }

    /// Forces the ladder to `rung` before the next frame. This is the
    /// external load-shedding hook: a fleet scheduler under pool
    /// contention pins a session to a harsher rung than its own
    /// deadline controller would pick (see `pimvo-serve`). Miss
    /// counters are untouched and the controller adjusts from the
    /// forced rung as usual afterwards.
    pub fn force_rung(&mut self, rung: DegradeRung) {
        self.rung = rung;
    }

    /// Restores controller state from a checkpoint (the rung persists
    /// across a kill-and-restore; per-frame spend does not).
    pub(crate) fn restore(&mut self, rung: DegradeRung, deadline_misses: u64, coasts: u64) {
        self.rung = rung;
        self.last_rung = rung;
        self.deadline_misses = deadline_misses;
        self.coasted_frames = coasts;
    }
}

/// Legality of a [`TrackingState`] transition under the tracker's
/// recovery state machine — the single table both the unit tests and
/// the chaos-soak invariant checker consult.
///
/// Structurally illegal, independent of configuration:
/// `Lost → Degraded` (once Lost, consecutive bad frames keep the
/// tracker Lost; only a good frame leaves, and it goes to `Ok`).
///
/// Config-dependent edge: `Ok → Lost` requires
/// `max_bad_frames <= 1` (a single bad frame exhausts the coast
/// window); with a longer window the tracker must pass through
/// `Degraded` first.
pub fn transition_legal(from: TrackingState, to: TrackingState, max_bad_frames: usize) -> bool {
    use TrackingState::{Degraded, Lost, Ok};
    // (from, to) pairs that are legal under every configuration.
    // Ok → Degraded is always reachable: even with a zero-length coast
    // window the deadline supervisor's Coast rung degrades a frame
    // without consuming the bad-frame budget.
    const ALWAYS_LEGAL: [(TrackingState, TrackingState); 7] = [
        (Ok, Ok),
        (Ok, Degraded),
        (Degraded, Ok),
        (Degraded, Degraded),
        (Degraded, Lost),
        (Lost, Ok),
        (Lost, Lost),
    ];
    ALWAYS_LEGAL.contains(&(from, to)) || ((from, to) == (Ok, Lost) && max_bad_frames <= 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_is_fixed() {
        let mut r = DegradeRung::Full;
        let seen: Vec<DegradeRung> = std::iter::from_fn(|| {
            let cur = r;
            r = r.escalate();
            Some(cur)
        })
        .take(5)
        .collect();
        assert_eq!(seen, DegradeRung::LADDER);
        assert_eq!(DegradeRung::Coast.escalate(), DegradeRung::Coast);
        assert_eq!(DegradeRung::Full.relax(), DegradeRung::Full);
        assert_eq!(DegradeRung::Coast.relax(), DegradeRung::SkipNmsRefinement);
    }

    #[test]
    fn controller_escalates_on_miss_and_relaxes_on_headroom() {
        let mut s = DeadlineSupervisor::new(BudgetConfig {
            cycles_per_frame: Some(1000),
            ..BudgetConfig::default()
        });
        let t = Telemetry::off();
        // miss -> one rung harsher
        assert!(s.end_frame(DegradeRung::Full, 1500, 0, 0, &t));
        assert_eq!(s.begin_frame(), DegradeRung::CapLmIterations);
        // met but tight (above the relax fraction) -> hold
        assert!(!s.end_frame(DegradeRung::CapLmIterations, 900, 0, 1, &t));
        assert_eq!(s.begin_frame(), DegradeRung::CapLmIterations);
        // comfortable -> one rung gentler
        assert!(!s.end_frame(DegradeRung::CapLmIterations, 300, 0, 2, &t));
        assert_eq!(s.begin_frame(), DegradeRung::Full);
        assert_eq!(s.status().deadline_misses, 1);
    }

    #[test]
    fn wall_budget_counts_as_miss() {
        let mut s = DeadlineSupervisor::new(BudgetConfig {
            wall_ns_per_frame: Some(1_000_000),
            ..BudgetConfig::default()
        });
        let t = Telemetry::off();
        assert!(s.end_frame(DegradeRung::Full, 0, 2_000_000, 0, &t));
        assert_eq!(s.status().deadline_misses, 1);
        assert_eq!(s.status().headroom_cycles, None);
    }

    #[test]
    fn disabled_budget_never_flags() {
        let s = DeadlineSupervisor::new(BudgetConfig::default());
        assert!(!s.enabled());
        assert!(!s.over_cycle_budget(u64::MAX));
        assert!(!s.over_wall_budget(u64::MAX));
    }

    #[test]
    fn transition_table_matches_state_machine() {
        use TrackingState::{Degraded, Lost, Ok};
        let states = [Ok, Degraded, Lost];
        for max_bad in [0usize, 1, 3] {
            for &from in &states {
                for &to in &states {
                    let legal = transition_legal(from, to, max_bad);
                    let expected = match (from, to) {
                        (Lost, Degraded) => false,
                        (Ok, Lost) => max_bad <= 1,
                        _ => true,
                    };
                    assert_eq!(legal, expected, "{from:?}->{to:?} max_bad={max_bad}");
                }
            }
        }
    }
}
