//! The feature-warp kernel (Fig. 5-b), in quantized and float forms.
//!
//! The quantized form is the exact arithmetic the PIM executes (the
//! machine-path equivalence is tested in [`crate::pim_exec`]): Q1.15
//! pose entries multiply Q4.12 features into Q5.27 accumulators
//! (`X, Y, Z`), the projection ratio is a 64-bit-dividend restoring
//! division producing Q2.14, and the pixel coordinates come out in
//! Q10.6.
//!
//! Dividing by the inverse depth never happens: `(X, Y, Z)` is the real
//! 3D point scaled by `c`, and the pinhole projection is
//! scale-invariant — the observation that makes the fixed-point
//! formulation of the paper work.

use crate::feature::Feature;
use crate::qmath::{qdiv, qmul_shr};
use crate::quant::{QFeature, QPose, PIX_FRAC, POSE_FRAC, RATIO_FRAC};
use pimvo_vomath::{Pinhole, Vec3, SE3};

/// Result of the quantized warp of one feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpQ {
    /// Warped pixel column, Q10.6 raw.
    pub u_raw: i64,
    /// Warped pixel row, Q10.6 raw.
    pub v_raw: i64,
    /// Projection ratio `X/Z`, Q2.14 raw.
    pub qx: i64,
    /// Projection ratio `Y/Z`, Q2.14 raw.
    pub qy: i64,
    /// Scaled depth `Z = Z_real * c`, Q4.12 raw.
    pub z: i64,
    /// Inverse real depth `c / Z = 1 / Z_real`, Q4.12 raw.
    pub iz_real: i64,
}

/// Warps a quantized feature by a quantized pose. Returns `None` when
/// the warped point lies at or behind the camera plane.
pub fn warp_q(f: &QFeature, pose: &QPose) -> Option<(i64, i64, i64)> {
    let ff = f.frac;
    // X = r00 a + r01 b + r02 + t0 c  (raw frac = POSE_FRAC + ff)
    let one = 1i64 << ff; // the homogeneous 1 in the feature's format
    let dot = |r0: i32, r1: i32, r2: i32, t: i32| -> i64 {
        r0 as i64 * f.a as i64 + r1 as i64 * f.b as i64 + r2 as i64 * one + t as i64 * f.c as i64
    };
    let x = dot(pose.r[0], pose.r[1], pose.r[2], pose.t[0]);
    let y = dot(pose.r[3], pose.r[4], pose.r[5], pose.t[1]);
    let z = dot(pose.r[6], pose.r[7], pose.r[8], pose.t[2]);
    if z <= 0 {
        return None;
    }
    Some((x, y, z))
}

/// Projects a quantized warp result to pixel coordinates and packages
/// the quantities the Jacobian kernel consumes.
///
/// `cam` supplies `f`, `cx`, `cy`; they are quantized internally to
/// Q10.6 constants (exact for typical integer-ish intrinsics).
pub fn project_q(f: &QFeature, pose: &QPose, cam: &Pinhole) -> Option<WarpQ> {
    let ff = f.frac;
    let warp_frac = POSE_FRAC + ff;
    let (x, y, z) = warp_q(f, pose)?;
    // ratios X/Z, Y/Z in Q2.14 (64-bit dividend in the Tmp Reg)
    let qx = qdiv(x << RATIO_FRAC, z, 32);
    let qy = qdiv(y << RATIO_FRAC, z, 32);
    // pixel coords: u' = f * qx + cx in Q10.6
    let f_q = (cam.f * (1 << PIX_FRAC) as f64).round() as i64;
    let cx_q = (cam.cx * (1 << PIX_FRAC) as f64).round() as i64;
    let cy_q = (cam.cy * (1 << PIX_FRAC) as f64).round() as i64;
    let u_raw = qmul_shr(f_q, qx, RATIO_FRAC) + cx_q;
    let v_raw = qmul_shr(f_q, qy, RATIO_FRAC) + cy_q;
    // Z rescaled to Q4.12 for the Jacobian's divisions
    let z_q12 = z >> (warp_frac - 12);
    if z_q12 <= 0 {
        return None;
    }
    // 1/Z_real = c / Z, Q4.12: (c << 12) has frac ff+12; divide by
    // z_q12 (frac 12) -> frac ff; rescale to 12
    let iz = qdiv((f.c as i64) << 12, z_q12, 32);
    let iz_real = if ff >= 12 {
        iz >> (ff - 12)
    } else {
        iz << (12 - ff)
    };
    Some(WarpQ {
        u_raw,
        v_raw,
        qx,
        qy,
        z: z_q12,
        iz_real,
    })
}

/// Float reference warp: returns the warped pixel coordinates, or
/// `None` behind the camera.
pub fn warp_float(f: &Feature, pose: &SE3, cam: &Pinhole) -> Option<(f64, f64)> {
    let p = pose.rotation.rotate(Vec3::new(f.a, f.b, 1.0)) + pose.translation * f.c;
    if p.z <= 1e-12 {
        return None;
    }
    Some((cam.f * p.x / p.z + cam.cx, cam.f * p.y / p.z + cam.cy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::FEAT_FRAC;

    fn feature_at(cam: &Pinhole, u: f64, v: f64, d: f64) -> Feature {
        let (a, b, c) = cam.inverse_depth_coords(u, v, d);
        Feature {
            u,
            v,
            depth: d,
            a,
            b,
            c,
        }
    }

    #[test]
    fn identity_warp_reprojects_to_source_pixel() {
        let cam = Pinhole::qvga();
        let f = feature_at(&cam, 100.25, 81.5, 2.0);
        let q = QFeature::quantize(&f);
        let pose = QPose::quantize(&SE3::IDENTITY);
        let w = project_q(&q, &pose, &cam).expect("in front");
        let u = w.u_raw as f64 / 64.0;
        let v = w.v_raw as f64 / 64.0;
        assert!((u - 100.25).abs() < 0.5, "u={u}");
        assert!((v - 81.5).abs() < 0.5, "v={v}");
    }

    #[test]
    fn sixteen_bit_warp_error_below_one_pixel() {
        // the paper's §3.3 claim: 16-bit quantization gives < 1 px
        // warp error versus float
        let cam = Pinhole::qvga();
        let pose = SE3::exp(&[0.04, -0.03, 0.05, 0.02, -0.015, 0.01]);
        let qpose = QPose::quantize(&pose);
        let mut max_err: f64 = 0.0;
        for i in 0..500 {
            let u = 10.0 + (i % 25) as f64 * 12.0;
            let v = 10.0 + (i / 25) as f64 * 11.0;
            let d = 0.8 + (i % 9) as f64 * 0.7;
            let f = feature_at(&cam, u, v, d);
            let Some((uf, vf)) = warp_float(&f, &pose, &cam) else {
                continue;
            };
            let q = QFeature::quantize(&f);
            let Some(w) = project_q(&q, &qpose, &cam) else {
                continue;
            };
            let (uq, vq) = (w.u_raw as f64 / 64.0, w.v_raw as f64 / 64.0);
            max_err = max_err.max((uq - uf).abs()).max((vq - vf).abs());
        }
        assert!(max_err < 1.0, "16-bit warp error {max_err} px");
    }

    #[test]
    fn eight_bit_warp_is_faulty() {
        // §3.3: "an 8-bit quantization leads to completely fault results"
        let cam = Pinhole::qvga();
        let pose = SE3::exp(&[0.04, -0.03, 0.05, 0.02, -0.015, 0.01]);
        let qpose = QPose::quantize(&pose);
        let mut max_err: f64 = 0.0;
        for i in 0..200 {
            let u = 12.0 + (i % 20) as f64 * 15.0;
            let v = 12.0 + (i / 20) as f64 * 22.0;
            let f = feature_at(&cam, u, v, 1.0 + (i % 5) as f64);
            let Some((uf, vf)) = warp_float(&f, &pose, &cam) else {
                continue;
            };
            // 8-bit features: Q4.4
            let q = QFeature::quantize_with(&f, 4, 8);
            let Some(w) = project_q(&q, &qpose, &cam) else {
                continue;
            };
            let (uq, vq) = (w.u_raw as f64 / 64.0, w.v_raw as f64 / 64.0);
            max_err = max_err.max((uq - uf).abs()).max((vq - vf).abs());
        }
        assert!(max_err > 5.0, "8-bit warp should be faulty, err {max_err}");
    }

    #[test]
    fn behind_camera_returns_none() {
        let cam = Pinhole::qvga();
        let f = feature_at(&cam, 160.0, 120.0, 0.5);
        let q = QFeature::quantize(&f);
        // translate backwards past the point: t_z = -0.9 (c=2 => t*c=-1.8 < -1... saturates)
        let pose = QPose::quantize(&SE3::exp(&[0.0, 0.0, -0.9, 0.0, 0.0, 0.0]));
        assert!(project_q(&q, &pose, &cam).is_none());
    }

    #[test]
    fn ratio_and_depth_outputs_consistent() {
        let cam = Pinhole::qvga();
        let f = feature_at(&cam, 200.0, 100.0, 2.0);
        let q = QFeature::quantize(&f);
        let pose = QPose::quantize(&SE3::IDENTITY);
        let w = project_q(&q, &pose, &cam).unwrap();
        // identity: Z = 1 (times c scaling cancels): z_q12 ~ 4096 * 1
        assert!((w.z as f64 / 4096.0 - 1.0).abs() < 0.01);
        // 1/Z_real = c = 0.5
        assert!((w.iz_real as f64 / 4096.0 - 0.5).abs() < 0.01);
        // qx = X/Z = a
        assert!((w.qx as f64 / 16384.0 - f.a).abs() < 0.01);
        let _ = FEAT_FRAC;
    }
}
