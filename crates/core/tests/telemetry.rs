//! Telemetry integration: the observability layer must never perturb
//! the simulation (cycle/energy numbers bit-identical with the sink on
//! or off) and must itself be deterministic (byte-identical exports for
//! the same sequence under an injected clock).

use pimvo_core::{BackendKind, Tracker, TrackerConfig, TrackingState};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_telemetry::{ManualClock, Telemetry, TimeDomain};

fn textured_frame(shift: f64) -> (GrayImage, DepthImage) {
    let gray = GrayImage::from_fn(320, 240, |x, y| {
        let xs = x as f64 + shift;
        let v = ((xs * 0.55).sin()
            + (y as f64 * 0.41).sin()
            + (xs * 0.13).sin() * (y as f64 * 0.09).cos())
            * 50.0
            + 120.0;
        v.clamp(0.0, 255.0) as u8
    });
    let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
    (gray, depth)
}

fn run_sequence(tracker: &mut Tracker, frames: usize) {
    for i in 0..frames {
        let (g, d) = textured_frame(0.7 * i as f64);
        tracker.process_frame(&g, &d);
    }
}

/// Telemetry is observation only: with the sink attached, every
/// simulated number (cycles, energy, op counts, poses) is bit-identical
/// to a run with the sink off.
#[test]
fn telemetry_does_not_perturb_simulation() {
    let mut plain = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    run_sequence(&mut plain, 4);

    let tele = Telemetry::with_clock(Box::new(ManualClock::with_step(1_000)));
    let mut observed = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    observed.set_telemetry(tele.clone());
    run_sequence(&mut observed, 4);

    let (a, b) = (plain.stats(), observed.stats());
    assert_eq!(a.edge_cycles, b.edge_cycles);
    assert_eq!(a.lm_cycles, b.lm_cycles);
    assert_eq!(a.lm_iterations, b.lm_iterations);
    assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
    assert_eq!(a.pim, b.pim, "ExecStats must be bit-identical");
    assert!(tele.is_enabled());
    assert!(!tele.snapshot().spans.is_empty());
}

/// Same seed + same frame sequence + one injectable clock source ⇒
/// byte-identical Perfetto JSON and metrics snapshot.
#[test]
fn exports_are_byte_deterministic() {
    let export = || {
        let tele = Telemetry::with_clock(Box::new(ManualClock::with_step(500)));
        let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
        t.set_telemetry(tele.clone());
        run_sequence(&mut t, 3);
        (tele.perfetto_json(), tele.metrics_text(), tele.log_jsonl())
    };
    let (p1, m1, l1) = export();
    let (p2, m2, l2) = export();
    assert_eq!(p1, p2, "Perfetto export must be byte-identical");
    assert_eq!(m1, m2, "metrics snapshot must be byte-identical");
    assert_eq!(l1, l2, "JSONL log must be byte-identical");
}

/// A short tracked sequence produces the span hierarchy the trace
/// viewer relies on: frame → stage spans on the tracker lane, pool
/// phases and per-shard spans underneath, in both time domains.
#[test]
fn trace_contains_frame_stage_pool_hierarchy() {
    let tele = Telemetry::with_clock(Box::new(ManualClock::with_step(1_000)));
    let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Pim);
    t.set_telemetry(tele.clone());
    run_sequence(&mut t, 3);

    let snap = tele.snapshot();
    let frames_cyc: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.track == "tracker" && s.name == "frame" && s.domain == TimeDomain::Cycles)
        .collect();
    assert_eq!(frames_cyc.len(), 3, "one cycle-domain frame span per frame");
    for (i, f) in frames_cyc.iter().enumerate() {
        assert_eq!(f.frame, Some(i as u64));
    }
    // stages nest inside their frame (time containment on the lane)
    for stage in ["edges+features", "align"] {
        let s = snap
            .spans
            .iter()
            .find(|s| s.track == "tracker" && s.name == stage && s.domain == TimeDomain::Cycles)
            .unwrap_or_else(|| panic!("missing {stage} span"));
        let owner = frames_cyc
            .iter()
            .find(|f| f.frame == s.frame)
            .expect("stage has a frame");
        assert!(s.start >= owner.start && s.start + s.dur <= owner.start + owner.dur);
    }
    // the pool recorded labeled phases and per-shard spans
    assert!(snap
        .spans
        .iter()
        .any(|s| s.track == "pool" && s.name == "lpf_pass1" && s.domain == TimeDomain::Cycles));
    assert!(snap.spans.iter().any(|s| s.track == "array 0"));
    // both domains present for the same stage names
    assert!(snap
        .spans
        .iter()
        .any(|s| s.track == "tracker" && s.name == "frame" && s.domain == TimeDomain::Wall));

    // counters and gauges made it into the metrics snapshot
    let metrics = tele.metrics_text();
    assert!(metrics.contains("pimvo_frames_total 3"));
    assert!(metrics.contains("pimvo_lm_iterations_total"));
    assert!(metrics.contains("pimvo_pool_healthy_arrays"));
    assert!(metrics.contains("pimvo_frame_features"));
}

/// Degrading the tracker emits warning/error transition events and the
/// transition counter.
#[test]
fn state_transitions_are_logged() {
    let tele = Telemetry::with_clock(Box::new(ManualClock::with_step(1_000)));
    let mut t = Tracker::new(TrackerConfig::default(), BackendKind::Float);
    t.set_telemetry(tele.clone());
    let (g, d) = textured_frame(0.0);
    t.process_frame(&g, &d);
    let blank = GrayImage::from_fn(320, 240, |_, _| 128);
    let max_bad = t.config().recovery.max_bad_frames;
    for _ in 0..max_bad {
        t.process_frame(&blank, &d);
    }
    assert_eq!(t.state(), TrackingState::Lost);
    let snap = tele.snapshot();
    assert!(snap
        .logs
        .iter()
        .any(|l| l.message == "tracking state changed"));
    let metrics = tele.metrics_text();
    assert!(metrics.contains("pimvo_tracking_transitions_total{from=\"ok\",to=\"degraded\"} 1"));
    assert!(metrics.contains("to=\"lost\"} 1"));
}
