//! Integration tests of the fault-resilience layer: quarantine
//! transparency at the pool level, ECC cost visibility, and (with
//! `--features fault`) end-to-end tracker recovery from an injected
//! fault burst.

use pimvo_core::pim_exec::{run_batch, BatchOptions, BatchOutput, BatchRunner, BATCH, POSE_BASE};
use pimvo_core::{Feature, QFeature, QKeyframe, QPose};
use pimvo_mcu::KeyframeTables;
use pimvo_pim::{ArrayConfig, PimMachine, Protection};
use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};
use proptest::prelude::*;

fn test_kf(cam: &Pinhole) -> QKeyframe {
    let (w, h) = (320u32, 240u32);
    let mut mask = vec![0u8; (w * h) as usize];
    for y in (8..h).step_by(16) {
        for x in (8..w).step_by(14) {
            mask[(y * w + x) as usize] = 255;
        }
    }
    let dt = distance_transform(&mask, w, h);
    let (grad_x, grad_y) = gradient_maps(&dt);
    QKeyframe::quantize(&KeyframeTables { dt, grad_x, grad_y }, cam)
}

fn features(cam: &Pinhole, n: usize, seed: u64) -> Vec<QFeature> {
    (0..n)
        .map(|i| {
            let k = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let u = 10.0 + (k % 300) as f64;
            let v = 10.0 + ((k >> 16) % 220) as f64;
            let d = 0.8 + ((k >> 32) % 500) as f64 * 0.01;
            let (a, b, c) = cam.inverse_depth_coords(u, v, d);
            QFeature::quantize(&Feature {
                u,
                v,
                depth: d,
                a,
                b,
                c,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A pool that lost an array to quarantine still produces outputs
    /// bit-identical to a pristine single machine: shards re-pack onto
    /// the healthy arrays, values never change.
    #[test]
    fn quarantined_pool_matches_single_machine(
        seed in any::<u64>(),
        n_feats in 1usize..220,
        n_arrays in 2usize..5,
        quarantine in 0usize..4,
        tx in -0.05f64..0.05,
        wz in -0.03f64..0.03,
    ) {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = features(&cam, n_feats, seed);
        let pose = QPose::quantize(&SE3::exp(&[tx, -0.01, 0.01, 0.0, 0.005, wz]));

        let mut runner = BatchRunner::new(BatchOptions {
            pool: n_arrays,
            ..Default::default()
        });
        runner.pool_mut().try_quarantine(quarantine % n_arrays).unwrap();
        let sharded = runner.submit(&feats, &pose, &kf, &cam).expect("healthy arrays remain");

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let sequential: Vec<BatchOutput> = feats
            .chunks(BATCH)
            .map(|c| run_batch(&mut m, POSE_BASE, c, &pose, &kf, &cam))
            .collect();

        prop_assert_eq!(&sharded, &sequential);
        // the quarantined array did no work
        let idle = runner.pool().array(quarantine % n_arrays).stats();
        prop_assert_eq!(idle.acc_ops, 0);
    }
}

/// Word protection charges its detect/correct overhead through the cost
/// model into `ExecStats` without perturbing any computed value.
#[test]
fn ecc_overhead_is_charged_but_values_unchanged() {
    let cam = Pinhole::qvga();
    let kf = test_kf(&cam);
    let feats = features(&cam, 100, 7);
    let pose = QPose::quantize(&SE3::exp(&[0.02, -0.01, 0.01, 0.0, 0.005, 0.01]));
    let opts = BatchOptions::default();

    let mut plain = BatchRunner::new(opts);
    let base = plain.submit(&feats, &pose, &kf, &cam).unwrap();
    let base_stats = plain.pool().merged_stats();

    for (p, corrects) in [(Protection::Parity, false), (Protection::Ecc, true)] {
        let builder = PimMachine::builder(ArrayConfig::qvga_banks(6)).protection(p);
        let mut prot = BatchRunner::from_builder(&builder, opts);
        let out = prot.submit(&feats, &pose, &kf, &cam).unwrap();
        assert_eq!(out, base, "{p:?} must not change any value");
        let stats = prot.pool().merged_stats();
        if corrects {
            assert!(stats.ecc_checks > 0, "ECC checks must be counted");
            assert!(
                stats.cycles > base_stats.cycles,
                "ECC check latency must be charged"
            );
            let cost = pimvo_pim::CostModel::default();
            assert!(
                stats.energy(&cost).ecc_pj > 0.0,
                "ECC energy must be visible"
            );
        } else {
            assert!(stats.parity_checks > 0, "parity checks must be counted");
            // parity is combinational in the sense amps: zero extra cycles
            assert_eq!(stats.cycles, base_stats.cycles);
        }
        assert_eq!(stats.ecc_corrections, 0, "no faults, nothing to correct");
    }
}

/// End-to-end recovery: a burst of injected faults corrupts the
/// machine-executed normal equations badly enough to degrade tracking;
/// once the burst ends the tracker must return to `Ok` within the
/// recovery window.
#[cfg(feature = "fault")]
mod injected {
    use pimvo_core::pim_exec::BatchOptions;
    use pimvo_core::{PimBackend, Tracker, TrackerBackend, TrackerConfig, TrackingState};
    use pimvo_kernels::{EdgeConfig, EdgeMaps, GrayImage};
    use pimvo_pim::{ArrayConfig, FaultModel, PimMachine, Protection};
    use pimvo_scene::{Sequence, SequenceKind};
    use pimvo_vomath::{NormalEquations, Pinhole, SE3};

    /// Delegating backend that switches every array's fault model off
    /// after a fixed number of frames — a bounded fault burst.
    struct BurstBackend {
        inner: PimBackend,
        frames: usize,
        burst_frames: usize,
    }

    impl TrackerBackend for BurstBackend {
        fn detect_edges(&mut self, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
            self.frames += 1;
            if self.frames == self.burst_frames + 1 {
                let pool = self.inner.pool_mut();
                for i in 0..pool.len() {
                    pool.array_mut(i).set_fault_model(FaultModel::none());
                }
            }
            self.inner.detect_edges(img, cfg)
        }
        fn downsample(&mut self, img: &GrayImage) -> GrayImage {
            self.inner.downsample(img)
        }
        fn linearize(
            &mut self,
            features: &[pimvo_core::Feature],
            keyframe: &pimvo_core::Keyframe,
            cam: &Pinhole,
            pose: &SE3,
        ) -> NormalEquations {
            self.inner.linearize(features, keyframe, cam, pose)
        }
        fn stats(&self) -> pimvo_core::BackendStats {
            self.inner.stats()
        }
        fn reset_stats(&mut self) {
            self.inner.reset_stats()
        }
        fn pool_health(&self) -> Option<pimvo_pim::PoolHealth> {
            self.inner.pool_health()
        }
    }

    #[test]
    fn tracker_relocalizes_after_fault_burst() {
        // Unprotected arrays + a heavy upset rate: the burst corrupts
        // the on-machine normal equations catastrophically.
        let builder = PimMachine::builder(ArrayConfig::qvga_banks(6))
            .fault(FaultModel::transient(11, 2e-4))
            .protection(Protection::None);
        let options = BatchOptions {
            pool: 2,
            on_machine: true,
            ..Default::default()
        };
        let config = TrackerConfig {
            max_features: 400,
            ..TrackerConfig::default()
        };
        let burst_frames = 1 + config.recovery.max_bad_frames;
        let backend = BurstBackend {
            inner: PimBackend::from_builder(&builder, options),
            frames: 0,
            burst_frames,
        };
        let mut tracker = Tracker::with_backend(config, Box::new(backend));

        let recovery_window = 3;
        let seq = Sequence::generate(SequenceKind::Desk, burst_frames + recovery_window);
        let mut states = Vec::new();
        for f in &seq.frames {
            let r = tracker.process_frame(&f.gray, &f.depth);
            states.push(r.state);
        }
        // frame 0 bootstraps (always Ok); the burst must visibly
        // degrade at least one of the following frames
        assert!(
            states[1..burst_frames]
                .iter()
                .any(|s| *s != TrackingState::Ok),
            "fault burst should degrade tracking: {states:?}"
        );
        // and once the burst ends, the tracker returns to Ok
        assert_eq!(
            *states.last().expect("nonempty"),
            TrackingState::Ok,
            "tracker must re-localize after the burst: {states:?}"
        );
        assert_eq!(tracker.state(), TrackingState::Ok);
    }

    /// A depleted pool (every array quarantined) must not stop the
    /// tracker: `linearize` degrades to the host-side scalar path.
    #[test]
    fn tracking_survives_full_pool_quarantine() {
        let options = BatchOptions {
            pool: 2,
            on_machine: true,
            ..Default::default()
        };
        let mut backend = PimBackend::with_options(options);
        backend.pool_mut().try_quarantine(0).unwrap();
        backend.pool_mut().try_quarantine(1).unwrap();
        let config = TrackerConfig {
            max_features: 400,
            ..TrackerConfig::default()
        };
        let mut tracker = Tracker::with_backend(config, Box::new(backend));
        let seq = Sequence::generate(SequenceKind::Desk, 3);
        for f in &seq.frames {
            let r = tracker.process_frame(&f.gray, &f.depth);
            assert!(r.pose_wc.translation_norm().is_finite());
        }
        assert_eq!(tracker.state(), TrackingState::Ok);
    }
}
