//! Integration tests of the supervisor layer: deadline enforcement
//! (degradation ladder, overrun bounding, bit-identity when disabled)
//! and checkpoint/restore (kill-and-restore trajectory equality, typed
//! rejection of damaged snapshots, recovery-config edge cases).

use pimvo_core::checkpoint::VERSION;
use pimvo_core::{
    transition_legal, BackendKind, BudgetConfig, Checkpoint, CheckpointError, DegradeRung, Tracker,
    TrackerConfig, TrackingState,
};
use pimvo_kernels::{DepthImage, GrayImage};
use pimvo_vomath::Pinhole;

/// Half-resolution config so debug-mode tests stay fast.
fn small_config() -> TrackerConfig {
    TrackerConfig {
        camera: Pinhole::qvga().halved(),
        max_features: 3000,
        ..TrackerConfig::default()
    }
}

/// Textured wall at 2 m, shifted horizontally by `shift` pixels —
/// emulates lateral camera motion of `shift * z / f` meters.
fn frame(cam: &Pinhole, shift: f64) -> (GrayImage, DepthImage) {
    let gray = GrayImage::from_fn(cam.width, cam.height, |x, y| {
        let xs = x as f64 + shift;
        let v = ((xs * 0.55).sin()
            + (y as f64 * 0.41).sin()
            + (xs * 0.13).sin() * (y as f64 * 0.09).cos())
            * 50.0
            + 120.0;
        v.clamp(0.0, 255.0) as u8
    });
    let depth = DepthImage::from_fn(cam.width, cam.height, |_, _| 2.0);
    (gray, depth)
}

fn blank(cam: &Pinhole) -> (GrayImage, DepthImage) {
    (
        GrayImage::from_fn(cam.width, cam.height, |_, _| 128),
        DepthImage::from_fn(cam.width, cam.height, |_, _| 2.0),
    )
}

#[test]
fn kill_and_restore_replays_the_uninterrupted_run() {
    let cfg = small_config();
    let cam = cfg.camera;
    let frames: Vec<_> = (0..10).map(|i| frame(&cam, i as f64 * 0.8)).collect();

    // uninterrupted reference run
    let mut a = Tracker::new(cfg.clone(), BackendKind::Float);
    let mut ref_poses = Vec::new();
    let mut ckpt: Option<Checkpoint> = None;
    for (i, (g, d)) in frames.iter().enumerate() {
        let r = a.process_frame(g, d);
        ref_poses.push(r.pose_wc);
        if i == 5 {
            ckpt = Some(a.checkpoint());
        }
    }
    let ckpt = ckpt.expect("checkpoint at frame 5");

    // "killed" process: a fresh tracker restores the snapshot and
    // continues from frame 6
    let mut b = Tracker::new(cfg, BackendKind::Float);
    b.restore(&ckpt).expect("restore");
    for (i, (g, d)) in frames.iter().enumerate().skip(6) {
        let r = b.process_frame(g, d);
        assert_eq!(r.index, i, "frame numbering resumes");
        let err = (r.pose_wc.translation - ref_poses[i].translation).norm();
        assert!(err < 1e-12, "frame {i}: restored pose off by {err}");
    }
}

#[test]
fn pim_round_trip_restores_pool_quarantine() {
    let cfg = small_config();
    let cam = cfg.camera;
    let mut a = Tracker::new(cfg.clone(), BackendKind::Pim);
    let (g, d) = frame(&cam, 0.0);
    a.process_frame(&g, &d);
    let ckpt = a.checkpoint();
    assert!(ckpt.pool.is_some(), "PIM backend snapshots pool health");

    let bytes = ckpt.to_bytes();
    let back = Checkpoint::from_bytes(&bytes).expect("decode");
    assert_eq!(ckpt, back, "binary round trip is exact");

    let mut b = Tracker::new(cfg, BackendKind::Pim);
    b.restore(&back).expect("restore onto PIM backend");
    let (g1, d1) = frame(&cam, 1.0);
    let ra = a.process_frame(&g1, &d1);
    let rb = b.process_frame(&g1, &d1);
    let err = (ra.pose_wc.translation - rb.pose_wc.translation).norm();
    assert!(err < 1e-12, "restored PIM tracker diverged by {err}");
}

#[test]
fn damaged_snapshots_are_rejected_with_typed_errors() {
    let cfg = small_config();
    let cam = cfg.camera;
    let mut t = Tracker::new(cfg.clone(), BackendKind::Float);
    let (g, d) = frame(&cam, 0.0);
    t.process_frame(&g, &d);
    let pose_before = t.process_frame(&g, &d).pose_wc;
    let bytes = t.checkpoint().to_bytes();

    // bit flip in the payload
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    assert!(matches!(
        Checkpoint::from_bytes(&corrupt),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));

    // truncation at arbitrary points never panics
    for frac in [1, 3, 7, 9] {
        let cut = bytes.len() * frac / 10;
        let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. } | CheckpointError::BadMagic
            ),
            "cut at {cut}: {err}"
        );
    }

    // future format version
    let mut future = bytes.clone();
    future[8] = (VERSION + 1) as u8;
    future[9] = ((VERSION + 1) >> 8) as u8;
    // checksum covers the version, so recompute it for a pure
    // version-mismatch (not a checksum failure)
    let crc = pimvo_core::checkpoint::crc32(&future[..future.len() - 4]);
    let n = future.len();
    future[n - 4..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&future),
        Err(CheckpointError::UnsupportedVersion { .. })
    ));

    // config mismatch: a tracker with different estimator settings
    // refuses the snapshot and is left unchanged
    let ckpt = Checkpoint::from_bytes(&bytes).expect("pristine decodes");
    let mut other_cfg = cfg;
    other_cfg.max_features = 1234;
    let mut other = Tracker::new(other_cfg, BackendKind::Float);
    assert!(matches!(
        other.restore(&ckpt),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    // the rejecting tracker still works from scratch
    let r = other.process_frame(&g, &d);
    assert!(r.is_keyframe);

    // ... and the original tracker was never disturbed
    let r = t.process_frame(&g, &d);
    let drift = (r.pose_wc.translation - pose_before.translation).norm();
    assert!(drift < 5e-3, "tracker disturbed by rejected restores");
}

#[test]
fn squeezed_budget_descends_the_documented_ladder() {
    // measure the (structurally constant) edge-phase cost: the
    // bootstrap frame runs edge detection only
    let cam = small_config().camera;
    let mut probe = Tracker::new(small_config(), BackendKind::Float);
    let (g0, d0) = frame(&cam, 0.0);
    probe.process_frame(&g0, &d0);
    let edge_cost = probe.stats().total_cycles();

    // budget just above the edge phase: edges always fit (no mid-frame
    // trip), any alignment at all overruns — so every working rung
    // misses at end-of-frame and the controller walks the ladder one
    // rung per miss, exactly in the documented order
    let mut cfg = small_config();
    cfg.budget = BudgetConfig {
        cycles_per_frame: Some(edge_cost + 1_000),
        ..BudgetConfig::default()
    };
    let mut t = Tracker::new(cfg, BackendKind::Float);
    let mut rungs = Vec::new();
    let mut states = vec![t.state()];
    for i in 0..8 {
        let (g, d) = frame(&cam, i as f64 * 0.5);
        let r = t.process_frame(&g, &d);
        rungs.push(r.rung);
        states.push(r.state);
    }
    // frame 0 bootstraps at Full (edges only: met, held); frames 1-4
    // escalate one rung per miss; a coasted frame spends nothing, so
    // the controller relaxes and duty-cycles Coast <-> SkipNms
    assert_eq!(
        rungs,
        [
            DegradeRung::Full,
            DegradeRung::Full,
            DegradeRung::CapLmIterations,
            DegradeRung::ReduceFeatures,
            DegradeRung::SkipNmsRefinement,
            DegradeRung::Coast,
            DegradeRung::SkipNmsRefinement,
            DegradeRung::Coast,
        ]
    );
    let status = t.budget_status();
    assert!(status.deadline_misses >= 4, "{status:?}");
    assert!(status.coasted_frames >= 2);
    // a scheduled coast starts no phases: zero cycles -> within budget
    assert_eq!(status.last_frame_cycles, 0, "coast must shed all compute");

    // every state transition along the way is legal per the shared table
    let max_bad = t.config().recovery.max_bad_frames;
    for w in states.windows(2) {
        assert!(
            transition_legal(w[0], w[1], max_bad),
            "illegal transition {:?} -> {:?}",
            w[0],
            w[1]
        );
    }
    // coasting is deliberate shedding, not failure: with a healthy
    // scene the tracker reports Degraded, never Lost
    assert!(states.iter().all(|s| *s != TrackingState::Lost));
}

#[test]
fn overrun_is_bounded_to_one_phase() {
    // budget below the edge-detection cost: the frame detects the
    // overrun at the edges+features boundary and must not start the
    // alignment phase (iterations stays 0 once tracking is supervised)
    let mut cfg = small_config();
    cfg.budget = BudgetConfig {
        cycles_per_frame: Some(10_000),
        ..BudgetConfig::default()
    };
    let cam = cfg.camera;
    let mut t = Tracker::new(cfg, BackendKind::Float);
    for i in 0..6 {
        let (g, d) = frame(&cam, i as f64 * 0.5);
        let r = t.process_frame(&g, &d);
        if i == 0 {
            continue; // bootstrap runs unsupervised
        }
        if t.budget_status().last_frame_cycles > 10_000 {
            assert_eq!(
                r.iterations, 0,
                "frame {i} overran at a phase boundary but still aligned"
            );
        }
    }
}

#[test]
fn generous_budget_is_bit_identical_to_disabled() {
    let cfg_off = small_config();
    let mut cfg_on = small_config();
    cfg_on.budget = BudgetConfig {
        cycles_per_frame: Some(u64::MAX),
        ..BudgetConfig::default()
    };
    let cam = cfg_off.camera;

    for kind in [BackendKind::Float, BackendKind::Pim] {
        let mut off = Tracker::new(cfg_off.clone(), kind);
        let mut on = Tracker::new(cfg_on.clone(), kind);
        for i in 0..4 {
            let (g, d) = frame(&cam, i as f64 * 0.7);
            let r_off = off.process_frame(&g, &d);
            let r_on = on.process_frame(&g, &d);
            assert_eq!(
                r_off.pose_wc.translation.x.to_bits(),
                r_on.pose_wc.translation.x.to_bits(),
                "{kind:?} frame {i}: pose must be bit-identical"
            );
            assert_eq!(r_off.iterations, r_on.iterations);
            assert_eq!(r_on.rung, DegradeRung::Full);
        }
        let (s_off, s_on) = (off.stats(), on.stats());
        assert_eq!(
            s_off.total_cycles(),
            s_on.total_cycles(),
            "{kind:?}: cycle counts must be bit-identical"
        );
        assert_eq!(
            s_off.energy_mj.to_bits(),
            s_on.energy_mj.to_bits(),
            "{kind:?}: energy must be bit-identical"
        );
    }
}

#[test]
fn zero_frame_coast_window_goes_straight_to_lost() {
    let mut cfg = small_config();
    cfg.recovery.max_bad_frames = 0;
    let cam = cfg.camera;
    let mut t = Tracker::new(cfg, BackendKind::Float);
    let (g, d) = frame(&cam, 0.0);
    t.process_frame(&g, &d);
    assert_eq!(t.state(), TrackingState::Ok);
    let (bg, bd) = blank(&cam);
    let r = t.process_frame(&bg, &bd);
    // the Ok -> Lost shortcut is exactly what the shared table allows
    // for max_bad_frames <= 1
    assert_eq!(r.state, TrackingState::Lost);
    assert!(transition_legal(TrackingState::Ok, r.state, 0));
    assert!(!transition_legal(TrackingState::Ok, TrackingState::Lost, 3));
}

#[test]
fn featureless_bootstrap_re_seeds_without_panicking() {
    // bootstrap on a blank frame builds an (empty) keyframe; subsequent
    // blank frames must walk Degraded -> Lost and re-seed against that
    // empty keyframe without panicking
    let cfg = small_config();
    let cam = cfg.camera;
    let max_bad = cfg.recovery.max_bad_frames;
    let mut t = Tracker::new(cfg, BackendKind::Float);
    let (bg, bd) = blank(&cam);
    let r0 = t.process_frame(&bg, &bd);
    assert!(r0.is_keyframe);
    let mut states = vec![t.state()];
    for _ in 0..max_bad + 2 {
        states.push(t.process_frame(&bg, &bd).state);
    }
    assert_eq!(*states.last().expect("ran frames"), TrackingState::Lost);
    for w in states.windows(2) {
        assert!(transition_legal(w[0], w[1], max_bad));
    }
    // texture returning re-localizes even from an empty-keyframe seed:
    // the first textured frame is rejected against the blank keyframe
    // (no residual support) but must not panic, and tracking continues
    let (g, d) = frame(&cam, 0.0);
    let _ = t.process_frame(&g, &d);
}

#[test]
fn checkpoint_file_round_trip_and_atomic_write() {
    let cfg = small_config();
    let cam = cfg.camera;
    let mut t = Tracker::new(cfg.clone(), BackendKind::Float);
    for i in 0..3 {
        let (g, d) = frame(&cam, i as f64);
        t.process_frame(&g, &d);
    }
    let dir = std::env::temp_dir().join("pimvo_supervision_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tracker.ckpt");
    t.save_checkpoint(&path).expect("save");
    assert!(!path.with_extension("ckpt.tmp").exists(), "temp cleaned up");

    let mut u = Tracker::new(cfg, BackendKind::Float);
    u.restore_from_file(&path).expect("restore from file");
    let (g, d) = frame(&cam, 3.0);
    let a = t.process_frame(&g, &d);
    let b = u.process_frame(&g, &d);
    assert_eq!(a.index, b.index);
    let err = (a.pose_wc.translation - b.pose_wc.translation).norm();
    assert!(err < 1e-12, "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
