//! Property tests of the quantized pose-estimation pipeline.

use pimvo_core::pim_exec::{run_batch, BATCH};
use pimvo_core::{jacobian_float, jacobian_q, Feature, QFeature, QKeyframe, QPose};
use pimvo_core::{project_q, warp_float};
use pimvo_mcu::KeyframeTables;
use pimvo_pim::{ArrayConfig, PimMachine};
use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};
use proptest::prelude::*;

fn feature_at(cam: &Pinhole, u: f64, v: f64, d: f64) -> Feature {
    let (a, b, c) = cam.inverse_depth_coords(u, v, d);
    Feature {
        u,
        v,
        depth: d,
        a,
        b,
        c,
    }
}

fn small_pose(t: [f64; 3], w: [f64; 3]) -> SE3 {
    SE3::exp(&[t[0], t[1], t[2], w[0], w[1], w[2]])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §3.3's headline: the Q4.12 warp stays within one pixel of the
    /// float warp for any in-range feature and any plausible
    /// inter-frame pose.
    #[test]
    fn q4_12_warp_error_below_one_pixel(
        u in 8.0f64..312.0,
        v in 8.0f64..232.0,
        d in 0.6f64..6.0,
        tx in -0.08f64..0.08,
        ty in -0.08f64..0.08,
        tz in -0.08f64..0.08,
        wx in -0.04f64..0.04,
        wy in -0.04f64..0.04,
        wz in -0.04f64..0.04,
    ) {
        let cam = Pinhole::qvga();
        let pose = small_pose([tx, ty, tz], [wx, wy, wz]);
        let f = feature_at(&cam, u, v, d);
        let (Some((uf, vf)), Some(wq)) = (
            warp_float(&f, &pose, &cam),
            project_q(&QFeature::quantize(&f), &QPose::quantize(&pose), &cam),
        ) else {
            return Ok(());
        };
        let (uq, vq) = (wq.u_raw as f64 / 64.0, wq.v_raw as f64 / 64.0);
        prop_assert!((uq - uf).abs() < 1.0, "u: {} vs {}", uq, uf);
        prop_assert!((vq - vf).abs() < 1.0, "v: {} vs {}", vq, vf);
    }

    /// The quantized Jacobian tracks the float Jacobian within a small
    /// relative error at the f·I gradient scale.
    #[test]
    fn quantized_jacobian_tracks_float(
        xh in -0.6f64..0.6,
        yh in -0.45f64..0.45,
        z in 0.5f64..5.0,
        gu in -350.0f64..350.0,
        gv in -350.0f64..350.0,
    ) {
        let jf = jacobian_float(xh, yh, z, gu, gv);
        let q = |v: f64, frac: u32| (v * (1 << frac) as f64).round() as i64;
        let jq = jacobian_q(
            q(xh, 14),
            q(yh, 14),
            q(1.0 / z, 12),
            q(gu, 2),
            q(gv, 2),
        );
        let scale = jf.iter().map(|v| v.abs()).fold(4.0f64, f64::max);
        for k in 0..6 {
            let got = jq[k] as f64 / 4.0;
            prop_assert!(
                (got - jf[k]).abs() < 0.03 * scale + 1.5,
                "J{}: {} vs {} (scale {})", k + 1, got, jf[k], scale
            );
        }
    }

    /// Quantization is monotone in precision: more fractional bits
    /// never give a (meaningfully) worse warp.
    #[test]
    fn more_bits_never_hurt(
        u in 20.0f64..300.0,
        v in 20.0f64..220.0,
        d in 0.8f64..5.0,
    ) {
        let cam = Pinhole::qvga();
        let pose = small_pose([0.03, -0.02, 0.04], [0.01, -0.02, 0.01]);
        let qpose = QPose::quantize(&pose);
        let f = feature_at(&cam, u, v, d);
        let Some((uf, vf)) = warp_float(&f, &pose, &cam) else {
            return Ok(());
        };
        let err = |frac: u32, bits: u32| -> Option<f64> {
            let q = QFeature::quantize_with(&f, frac, bits);
            let w = project_q(&q, &qpose, &cam)?;
            Some(((w.u_raw as f64 / 64.0 - uf).powi(2)
                + (w.v_raw as f64 / 64.0 - vf).powi(2))
            .sqrt())
        };
        let (Some(e16), Some(e8)) = (err(12, 16), err(4, 8)) else {
            return Ok(());
        };
        prop_assert!(e16 <= e8 + 0.2, "16-bit {} vs 8-bit {}", e16, e8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The machine execution equals the fast path for random feature
    /// sets and poses (the full-batch equivalence, randomized).
    #[test]
    fn machine_equals_fast_path_randomized(
        seed in 0u32..1000,
        tx in -0.05f64..0.05,
        wy in -0.02f64..0.02,
    ) {
        let cam = Pinhole::qvga();
        let (w, h) = (320u32, 240u32);
        let mut mask = vec![0u8; (w * h) as usize];
        for i in (seed as usize % 13..mask.len()).step_by(41) {
            mask[i] = 255;
        }
        let dt = distance_transform(&mask, w, h);
        let (gx, gy) = gradient_maps(&dt);
        let kf = QKeyframe::quantize(&KeyframeTables { dt, grad_x: gx, grad_y: gy }, &cam);
        let pose = QPose::quantize(&small_pose([tx, 0.01, -0.02], [0.0, wy, 0.005]));
        let feats: Vec<QFeature> = (0..BATCH)
            .map(|i| {
                let u = 10.0 + ((i * 7 + seed as usize) % 300) as f64;
                let v = 10.0 + ((i * 13) % 220) as f64;
                let d = 0.9 + (i % 8) as f64 * 0.5;
                QFeature::quantize(&feature_at(&cam, u, v, d))
            })
            .collect();
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let out = run_batch(&mut m, 1280, &feats, &pose, &kf, &cam);
        for (i, f) in feats.iter().enumerate() {
            if let Some(wq) = project_q(f, &pose, &cam) {
                prop_assert_eq!(out.u_raw[i], wq.u_raw, "lane {} u", i);
                if out.valid[i] {
                    let (r, gu, gv) = kf.lookup_q(wq.u_raw, wq.v_raw).expect("in map");
                    prop_assert_eq!(out.residuals[i], r, "lane {} r", i);
                    let jf = jacobian_q(wq.qx, wq.qy, wq.iz_real, gu as i64, gv as i64);
                    prop_assert_eq!(out.jacobians[i], jf, "lane {} J", i);
                }
            }
        }
    }
}
