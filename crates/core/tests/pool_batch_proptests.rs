//! Property tests of the sharded pose-estimation runner: for random
//! poses, feature sets and pool sizes, [`BatchRunner::submit`] is
//! bit-identical to running the batches sequentially on one array,
//! and the distributed compute work is conserved exactly.

use pimvo_core::pim_exec::{run_batch, BatchOptions, BatchOutput, BatchRunner, BATCH, POSE_BASE};
use pimvo_core::{Feature, QFeature, QKeyframe, QPose};
use pimvo_mcu::KeyframeTables;
use pimvo_pim::{ArrayConfig, PimMachine};
use pimvo_vomath::{distance_transform, gradient_maps, Pinhole, SE3};
use proptest::prelude::*;

fn test_kf(cam: &Pinhole) -> QKeyframe {
    let (w, h) = (320u32, 240u32);
    let mut mask = vec![0u8; (w * h) as usize];
    for y in (8..h).step_by(16) {
        for x in (8..w).step_by(14) {
            mask[(y * w + x) as usize] = 255;
        }
    }
    let dt = distance_transform(&mask, w, h);
    let (grad_x, grad_y) = gradient_maps(&dt);
    QKeyframe::quantize(&KeyframeTables { dt, grad_x, grad_y }, cam)
}

fn features(cam: &Pinhole, n: usize, seed: u64) -> Vec<QFeature> {
    (0..n)
        .map(|i| {
            let k = (i as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9E3779B97F4A7C15);
            let u = 10.0 + (k % 300) as f64;
            let v = 10.0 + ((k >> 16) % 220) as f64;
            let d = 0.8 + ((k >> 32) % 500) as f64 * 0.01;
            let (a, b, c) = cam.inverse_depth_coords(u, v, d);
            QFeature::quantize(&Feature {
                u,
                v,
                depth: d,
                a,
                b,
                c,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sharded warp/Jacobian/Hessian batches are bit-identical to the
    /// sequential single-array execution for any pose, feature set and
    /// pool size, and the merged compute stats are conserved.
    #[test]
    fn sharded_batches_equal_sequential(
        seed in any::<u64>(),
        n_feats in 1usize..260,
        n_arrays in 1usize..5,
        tx in -0.05f64..0.05,
        ty in -0.05f64..0.05,
        wz in -0.03f64..0.03,
    ) {
        let cam = Pinhole::qvga();
        let kf = test_kf(&cam);
        let feats = features(&cam, n_feats, seed);
        let pose = QPose::quantize(&SE3::exp(&[tx, ty, 0.01, 0.0, 0.005, wz]));

        let mut runner = BatchRunner::new(BatchOptions {
            pool: n_arrays,
            ..Default::default()
        });
        let sharded = runner.submit(&feats, &pose, &kf, &cam).unwrap();

        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let sequential: Vec<BatchOutput> = feats
            .chunks(BATCH)
            .map(|c| run_batch(&mut m, POSE_BASE, c, &pose, &kf, &cam))
            .collect();

        prop_assert_eq!(&sharded, &sequential);
        let merged = runner.pool().merged_stats();
        prop_assert_eq!(merged.cycles, m.stats().cycles);
        prop_assert_eq!(merged.acc_ops, m.stats().acc_ops);
        prop_assert_eq!(merged.sram_reads, m.stats().sram_reads);
        prop_assert_eq!(&merged.op_histogram, &m.stats().op_histogram);
    }
}
