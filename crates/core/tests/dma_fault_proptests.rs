//! Transfer-fault transparency (feature `fault`): seeded DMA faults
//! with retries enabled never reach the value domain. Kernel outputs
//! stay bit-identical across all four lowering levels, and tracker
//! pose trajectories stay bit-identical on both backends — the fault
//! ladder (CRC retry → backoff → quarantine → synchronous port) only
//! moves cycles, never bits.
#![cfg(feature = "fault")]

use pimvo_core::{BackendKind, TrackerBuilder, TrackerConfig};
use pimvo_kernels::{ir, DepthImage, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, DmaConfig, DmaFaultModel, LowerLevel, PimMachine};
use proptest::prelude::*;

fn test_image(phase: u32) -> GrayImage {
    GrayImage::from_fn(64, 48, |x, y| {
        ((x * 31 + y * 17 + phase * 101).wrapping_mul(2654435761) >> 11) as u8
    })
}

/// A machine with a DMA channel and enough Tmp registers for the
/// multi-register lowerings.
fn dma_machine() -> PimMachine {
    let mut m = PimMachine::builder(ArrayConfig::qvga_banks(6))
        .dma(DmaConfig::default())
        .build();
    m.set_tmp_regs(ir::REGS_REQUIRED);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Edge detection under a seeded transfer-fault model matches the
    /// fault-free run bit for bit at every lowering level, and the
    /// channel health ledger confirms faults were actually injected
    /// and handled (not silently absent).
    #[test]
    fn dma_faults_invisible_across_lowering_levels(
        seed in any::<u64>(),
        phase in 0u32..1000,
        flip in 0.05f64..0.30,
        stall in 0.02f64..0.15,
    ) {
        let img = test_image(phase);
        let cfg = EdgeConfig::default();
        let levels = [
            LowerLevel::Naive,
            LowerLevel::Opt,
            LowerLevel::MultiReg(2),
            LowerLevel::MultiReg(ir::REGS_REQUIRED),
        ];
        for level in levels {
            let mut clean = dma_machine();
            let want = ir::edge_detect(&mut clean, &img, &cfg, level);

            let mut faulted = dma_machine();
            faulted.set_dma_fault(DmaFaultModel::new(seed, flip, stall, 0.02));
            let got = ir::edge_detect(&mut faulted, &img, &cfg, level);
            prop_assert_eq!(&got, &want, "level {} diverged under faults", level);

            let h = faulted.dma_health().expect("channel installed");
            prop_assert!(h.faults() > 0, "level {}: no fault was injected", level);
            prop_assert!(
                h.retries > 0 || h.sync_fallbacks > 0,
                "level {}: faults neither retried nor degraded", level
            );
        }
    }
}

/// A deterministic synthetic stream (sinusoid texture translating at
/// `speed` px/frame), same family as the serve fault tests.
fn frame(k: usize, speed: f64) -> (GrayImage, DepthImage) {
    let shift = k as f64 * speed;
    let gray = GrayImage::from_fn(320, 240, |x, y| {
        let xs = x as f64 + shift;
        let y = y as f64;
        (((xs * 0.55).sin() + (y * 0.41).sin() + (xs * 0.13).sin() * (y * 0.09).cos()) * 50.0
            + 120.0) as u8
    });
    let depth = DepthImage::from_fn(320, 240, |_, _| 2.0);
    (gray, depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Tracker pose trajectories are bit-identical between a fault-free
    /// and a transfer-faulted run on both backends. (The float backend
    /// has no data path to fault — the builder's DMA knob is inert
    /// there — so it doubles as the control arm.)
    #[test]
    fn dma_faults_leave_poses_bit_identical_on_both_backends(
        seed in any::<u64>(),
        speed_sel in 0usize..10,
    ) {
        const FRAMES: usize = 3;
        let speed = 0.4 + speed_sel as f64 * 0.08;
        for kind in [BackendKind::Pim, BackendKind::Float] {
            let run = |fault: Option<DmaFaultModel>| {
                let mut t = TrackerBuilder::new(TrackerConfig::default())
                    .backend(kind)
                    .dma(DmaConfig::default())
                    .build();
                if let (Some(model), Some(pool)) = (fault, t.pool_mut()) {
                    pool.set_dma_fault(model);
                }
                (0..FRAMES)
                    .map(|k| {
                        let (g, d) = frame(k, speed);
                        t.process_frame(&g, &d).pose_wc
                    })
                    .collect::<Vec<_>>()
            };
            let want = run(None);
            let got = run(Some(DmaFaultModel::new(seed, 0.15, 0.08, 0.02)));
            prop_assert_eq!(&got, &want, "{:?} poses diverged under faults", kind);
        }
    }
}
