//! Minimal hand-rolled JSON formatting helpers (the workspace is
//! vendored-offline; no serde). Only what the exporters need: string
//! escaping and deterministic number formatting.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal of `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_escaped(&mut out, s);
    out
}

/// Formats `v` as a JSON number: integers without a fraction,
/// non-finite values as `null` (JSON has no NaN/Inf).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escaped("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
