//! Dependency-tracked binary op trace: the flight-recorder format.
//!
//! The simulator's [`crate::Telemetry`] spans answer *"how long did
//! this phase take"*; this module answers *"which macro-ops, rows and
//! host transfers burned the budget, and in what order"*. Producers
//! (the `pimvo-pim` machine/pool/executor layer) emit one fixed-size
//! [`OpRecord`] per macro-op with explicit dependency edges — row RAW /
//! WAR within an array, wave barriers and job ordering across arrays,
//! host load/store ↔ compute — and this module owns everything
//! downstream of that stream:
//!
//! * the **versioned little-endian binary codec** ([`OpTrace::encode`] /
//!   [`OpTrace::decode`]), byte-deterministic and CRC-checked:
//!
//!   ```text
//!   magic "PIMVOTRC" | version u16 | record_len u16 | dropped u64 |
//!   count u64 | records (80 B each) | nlabels u64 |
//!   (len u64, utf8 bytes)* | crc32
//!   ```
//!
//! * the **critical-path profiler** ([`profile`]): a longest-path walk
//!   over the dependency DAG, attributing cycles/energy per op kind,
//!   per kernel label, per array and per session;
//! * a **Perfetto converter** ([`to_perfetto`]) for small windows.
//!
//! Corrupt input never panics: every decode failure is a typed
//! [`OpTraceError`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Container magic: "PIMVOTRC" (trace), distinct from the fleet
/// manifest ("PIMVOFLT") and tracker checkpoint ("PIMVOCKP") magics.
pub const OPTRACE_MAGIC: &[u8; 8] = b"PIMVOTRC";
/// Container version; bumped on layout changes.
pub const OPTRACE_VERSION: u16 = 1;
/// Encoded size of one [`OpRecord`], embedded in the header so a
/// decoder can reject records from a different layout outright.
pub const OP_RECORD_LEN: u16 = 80;

/// Sentinel row index: the record reads/writes no SRAM row there.
pub const NO_ROW: u32 = u32::MAX;
/// Sentinel label index: the record carries no kernel label.
pub const NO_LABEL: u32 = u32::MAX;
/// Sentinel session id: the record is not attributed to a session.
pub const NO_SESSION: u32 = u32::MAX;
/// Array index of the pool-level stream (wave barriers / sync points).
pub const POOL_STREAM: u16 = u16::MAX;
/// High bit of [`OpRecord::array`] marking a DMA channel lane: channel
/// `c` of array `a` records as `DMA_LANE_BASE | a`, rendering as
/// `dma a` in the profile tables and Perfetto tracks. Distinct from
/// [`POOL_STREAM`] (all 16 bits set).
pub const DMA_LANE_BASE: u16 = 0x8000;
/// Dependency slots per record; `0` marks an empty slot (record ids
/// start at 1).
pub const DEPS_PER_RECORD: usize = 3;

/// What one [`OpRecord`] did. The first fourteen variants mirror the
/// machine's macro-op classes; the rest cover the host port, array
/// maintenance and pool synchronisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum OpKind {
    /// Bitwise logic through the dual sense amplifiers.
    Logic = 0,
    /// Add / subtract.
    AddSub = 1,
    /// Saturating add / subtract / narrow.
    SatAddSub = 2,
    /// Average.
    Avg = 3,
    /// Absolute difference.
    AbsDiff = 4,
    /// Min / max.
    MinMax = 5,
    /// Lane or bit shift.
    Shift = 6,
    /// Comparison.
    Cmp = 7,
    /// Select / register move.
    Select = 8,
    /// Multiplication (shift-accumulate steps folded in).
    Mul = 9,
    /// Division (subtract-restore steps folded in).
    Div = 10,
    /// Tmp-Reg write-back to an SRAM row.
    WriteBack = 11,
    /// Lane-tree reduction.
    Reduce = 12,
    /// Serialized random-access gather.
    Gather = 13,
    /// Host port → SRAM row transfer (image upload, constants).
    HostWrite = 14,
    /// SRAM row → host port transfer (result readout).
    HostRead = 15,
    /// Scrub (march-test) pass over a row.
    Scrub = 16,
    /// Verify-on-read patrol charge (probation mode).
    Patrol = 17,
    /// Spare-row remap migration.
    Remap = 18,
    /// Pool synchronisation point: joins the member streams of one
    /// wave (carries the inter-array sync cost) or serializes a
    /// recovery/patrol step against the pool's wall clock.
    Barrier = 19,
    /// DMA descriptor host → SRAM (strip input, pyramid prefetch):
    /// setup + per-beat + completion cycles on a channel lane.
    DmaIn = 20,
    /// DMA descriptor SRAM → host (strip/result readout).
    DmaOut = 21,
    /// Compute stream stalled waiting on an inbound DMA completion
    /// (includes retry/backoff/timeout penalties under faults).
    DmaStall = 22,
}

/// Every kind, in discriminant order (profile table order).
pub const OP_KINDS: [OpKind; 23] = [
    OpKind::Logic,
    OpKind::AddSub,
    OpKind::SatAddSub,
    OpKind::Avg,
    OpKind::AbsDiff,
    OpKind::MinMax,
    OpKind::Shift,
    OpKind::Cmp,
    OpKind::Select,
    OpKind::Mul,
    OpKind::Div,
    OpKind::WriteBack,
    OpKind::Reduce,
    OpKind::Gather,
    OpKind::HostWrite,
    OpKind::HostRead,
    OpKind::Scrub,
    OpKind::Patrol,
    OpKind::Remap,
    OpKind::Barrier,
    OpKind::DmaIn,
    OpKind::DmaOut,
    OpKind::DmaStall,
];

impl OpKind {
    /// Stable wire/display name.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Logic => "logic",
            OpKind::AddSub => "addsub",
            OpKind::SatAddSub => "sat",
            OpKind::Avg => "avg",
            OpKind::AbsDiff => "absdiff",
            OpKind::MinMax => "minmax",
            OpKind::Shift => "shift",
            OpKind::Cmp => "cmp",
            OpKind::Select => "select",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::WriteBack => "writeback",
            OpKind::Reduce => "reduce",
            OpKind::Gather => "gather",
            OpKind::HostWrite => "host_write",
            OpKind::HostRead => "host_read",
            OpKind::Scrub => "scrub",
            OpKind::Patrol => "patrol",
            OpKind::Remap => "remap",
            OpKind::Barrier => "barrier",
            OpKind::DmaIn => "dma_in",
            OpKind::DmaOut => "dma_out",
            OpKind::DmaStall => "dma_stall",
        }
    }

    /// Decodes a wire discriminant.
    pub fn from_u16(v: u16) -> Option<OpKind> {
        OP_KINDS.get(v as usize).copied()
    }
}

/// One traced macro-op: what ran, where, what it cost, and which
/// earlier records it depended on. Fixed 80-byte wire encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Globally unique id (> 0; producers namespace ids per stream).
    pub id: u64,
    /// Dependency edges: ids of records that must finish before this
    /// one starts. Slot order: serial predecessor in the same stream,
    /// row RAW (last writer of a read row), row WAR/WAW (last
    /// reader/writer of the written row). `0` = empty slot.
    pub deps: [u64; DEPS_PER_RECORD],
    /// Stream-local cycle counter at op start (machine cycles for
    /// array streams, pool wall cycles for the [`POOL_STREAM`]).
    pub start: u64,
    /// Cycles charged, protection/multi-step overhead included.
    pub cycles: u64,
    /// SRAM accesses charged (reads + writes), for energy attribution.
    pub sram: u32,
    /// Operation size: lanes touched, gather elements, scrubbed rows.
    pub size: u32,
    /// Rows read (`[a, b]`; [`NO_ROW`] = operand was not a row).
    pub rows: [u32; 2],
    /// Row written ([`NO_ROW`] = result stayed in the Tmp Reg).
    pub dst: u32,
    /// Owning session id ([`NO_SESSION`] outside the serving layer).
    pub session: u32,
    /// Kernel label as an index into [`OpTrace::labels`]
    /// ([`NO_LABEL`] = unlabeled).
    pub label: u32,
    /// What the op did.
    pub kind: OpKind,
    /// Array index, or [`POOL_STREAM`] for pool synchronisation.
    pub array: u16,
}

impl OpRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        for d in &self.deps {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.cycles.to_le_bytes());
        out.extend_from_slice(&self.sram.to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.rows[0].to_le_bytes());
        out.extend_from_slice(&self.rows[1].to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.label.to_le_bytes());
        out.extend_from_slice(&(self.kind as u16).to_le_bytes());
        out.extend_from_slice(&self.array.to_le_bytes());
    }

    fn decode_from(bytes: &[u8]) -> Result<OpRecord, OpTraceError> {
        debug_assert_eq!(bytes.len(), OP_RECORD_LEN as usize);
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().expect("2 bytes"));
        let id = u64_at(0);
        if id == 0 {
            return Err(OpTraceError::Malformed("record id zero"));
        }
        let kind =
            OpKind::from_u16(u16_at(76)).ok_or(OpTraceError::Malformed("unknown op kind"))?;
        Ok(OpRecord {
            id,
            deps: [u64_at(8), u64_at(16), u64_at(24)],
            start: u64_at(32),
            cycles: u64_at(40),
            sram: u32_at(48),
            size: u32_at(52),
            rows: [u32_at(56), u32_at(60)],
            dst: u32_at(64),
            session: u32_at(68),
            label: u32_at(72),
            kind,
            array: u16_at(78),
        })
    }
}

/// A batch of [`OpRecord`]s plus the interned kernel-label table and
/// the producer's ring-buffer drop counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpTrace {
    /// Records, in emission order per stream (streams concatenate on
    /// [`OpTrace::merge`]; dependency ids remain valid across streams).
    pub records: Vec<OpRecord>,
    /// Kernel label strings, indexed by [`OpRecord::label`].
    pub labels: Vec<String>,
    /// Records the producer's bounded ring dropped (oldest-first).
    /// Non-zero means dependency edges may dangle; the profiler treats
    /// a missing dependency as already finished.
    pub dropped: u64,
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        OpTrace::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The label string behind an [`OpRecord::label`] index.
    pub fn label(&self, idx: u32) -> Option<&str> {
        if idx == NO_LABEL {
            return None;
        }
        self.labels.get(idx as usize).map(String::as_str)
    }

    /// Interns `label`, returning its index.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as u32;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as u32
    }

    /// Appends another trace (a per-array or pool stream), remapping
    /// its label indices into this trace's table and accumulating its
    /// drop counter. Record ids are producer-namespaced and stay
    /// valid unchanged.
    pub fn merge(&mut self, other: OpTrace) {
        let remap: Vec<u32> = other.labels.iter().map(|l| self.intern(l)).collect();
        self.records.extend(other.records.into_iter().map(|mut r| {
            if r.label != NO_LABEL {
                r.label = remap.get(r.label as usize).copied().unwrap_or(NO_LABEL);
            }
            r
        }));
        self.dropped += other.dropped;
    }

    /// Serializes the trace into the versioned, CRC-checked container.
    /// Byte-deterministic: the same trace always encodes identically.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 2 + 2 + 8 + 8 + self.records.len() * OP_RECORD_LEN as usize + 8 + 4,
        );
        out.extend_from_slice(OPTRACE_MAGIC);
        out.extend_from_slice(&OPTRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&OP_RECORD_LEN.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            r.encode_into(&mut out);
        }
        out.extend_from_slice(&(self.labels.len() as u64).to_le_bytes());
        for l in &self.labels {
            out.extend_from_slice(&(l.len() as u64).to_le_bytes());
            out.extend_from_slice(l.as_bytes());
        }
        let crc = crc32(&out[8..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a container produced by [`OpTrace::encode`].
    ///
    /// # Errors
    ///
    /// A typed [`OpTraceError`] on any corruption: truncation, foreign
    /// magic, unsupported version or record layout, CRC mismatch or a
    /// structurally invalid payload. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<OpTrace, OpTraceError> {
        if bytes.len() < 8 + 2 + 2 + 8 + 8 + 8 + 4 {
            return Err(OpTraceError::Truncated);
        }
        if &bytes[..8] != OPTRACE_MAGIC {
            return Err(OpTraceError::BadMagic);
        }
        let body = &bytes[8..bytes.len() - 4];
        let expected = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let got = crc32(body);
        if expected != got {
            return Err(OpTraceError::Crc { expected, got });
        }
        let c = &mut 0usize;
        let version = read_u16(body, c)?;
        if version != OPTRACE_VERSION {
            return Err(OpTraceError::Version(version));
        }
        let record_len = read_u16(body, c)?;
        if record_len != OP_RECORD_LEN {
            return Err(OpTraceError::RecordLen(record_len));
        }
        let dropped = read_u64(body, c)?;
        let count = read_u64(body, c)?;
        let need = (count as usize)
            .checked_mul(OP_RECORD_LEN as usize)
            .ok_or(OpTraceError::Malformed("record count overflow"))?;
        let rec_bytes = read_bytes(body, c, need)?;
        let mut records = Vec::with_capacity(count as usize);
        for chunk in rec_bytes.chunks_exact(OP_RECORD_LEN as usize) {
            records.push(OpRecord::decode_from(chunk)?);
        }
        let nlabels = read_u64(body, c)? as usize;
        let mut labels = Vec::with_capacity(nlabels.min(1 << 16));
        for _ in 0..nlabels {
            let len = read_u64(body, c)? as usize;
            let raw = read_bytes(body, c, len)?;
            let s =
                std::str::from_utf8(raw).map_err(|_| OpTraceError::Malformed("label not utf-8"))?;
            labels.push(s.to_string());
        }
        if *c != body.len() {
            return Err(OpTraceError::Malformed("trailing bytes"));
        }
        for r in &records {
            if r.label != NO_LABEL && r.label as usize >= labels.len() {
                return Err(OpTraceError::Malformed("label index out of range"));
            }
        }
        Ok(OpTrace {
            records,
            labels,
            dropped,
        })
    }
}

/// Typed op-trace decode errors.
#[derive(Debug)]
pub enum OpTraceError {
    /// The input is shorter than the fixed container framing.
    Truncated,
    /// The input does not start with the op-trace magic.
    BadMagic,
    /// The container was written by an incompatible version.
    Version(u16),
    /// The container embeds a different record layout size.
    RecordLen(u16),
    /// The body CRC does not match: torn or corrupted file.
    Crc {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC of the body actually read.
        got: u32,
    },
    /// The payload failed structural validation.
    Malformed(&'static str),
}

impl std::fmt::Display for OpTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpTraceError::Truncated => write!(f, "op trace shorter than its framing"),
            OpTraceError::BadMagic => write!(f, "not an op trace (bad magic)"),
            OpTraceError::Version(v) => write!(f, "unsupported op trace version {v}"),
            OpTraceError::RecordLen(n) => write!(f, "unsupported op record size {n}"),
            OpTraceError::Crc { expected, got } => write!(
                f,
                "op trace CRC mismatch (expected {expected:#010x}, got {got:#010x})"
            ),
            OpTraceError::Malformed(what) => write!(f, "malformed op trace: {what}"),
        }
    }
}

impl std::error::Error for OpTraceError {}

fn read_u16(bytes: &[u8], cursor: &mut usize) -> Result<u16, OpTraceError> {
    let b = read_bytes(bytes, cursor, 2)?;
    Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, OpTraceError> {
    let b = read_bytes(bytes, cursor, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn read_bytes<'a>(
    bytes: &'a [u8],
    cursor: &mut usize,
    len: usize,
) -> Result<&'a [u8], OpTraceError> {
    let end = cursor
        .checked_add(len)
        .ok_or(OpTraceError::Malformed("length overflow"))?;
    if end > bytes.len() {
        return Err(OpTraceError::Truncated);
    }
    let out = &bytes[*cursor..end];
    *cursor = end;
    Ok(out)
}

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the same
/// polynomial the tracker/fleet checkpoints use, reimplemented here so
/// the telemetry crate stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Critical-path profiler
// ---------------------------------------------------------------------

/// Per-record energy weights for the profile's attribution columns.
/// Callers derive them from their `CostModel` (the trace itself stays
/// cost-model-free): `op_pj` per charged cycle (shifter/adder +
/// Tmp-Reg traffic), `sram_pj` per SRAM access.
#[derive(Clone, Copy, Debug)]
pub struct EnergyWeights {
    /// Picojoules per charged cycle.
    pub op_pj: f64,
    /// Picojoules per SRAM access.
    pub sram_pj: f64,
}

/// One aggregation bucket of a [`Profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileRow {
    /// Records in the bucket.
    pub count: u64,
    /// Cycles charged by the bucket.
    pub cycles: u64,
    /// SRAM accesses charged by the bucket.
    pub sram: u64,
    /// Cycles the bucket contributes to the critical path.
    pub crit_cycles: u64,
}

impl ProfileRow {
    fn add(&mut self, r: &OpRecord, on_path: bool) {
        self.count += 1;
        self.cycles += r.cycles;
        self.sram += r.sram as u64;
        if on_path {
            self.crit_cycles += r.cycles;
        }
    }

    /// Energy attributed to the bucket under `w`.
    pub fn energy_pj(&self, w: &EnergyWeights) -> f64 {
        self.cycles as f64 * w.op_pj + self.sram as f64 * w.sram_pj
    }
}

/// The dependency-DAG profile of one [`OpTrace`]: critical path plus
/// cycle/energy attribution per op kind, kernel, array and session.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Records profiled.
    pub records: u64,
    /// Producer-side ring drops (dangling edges possible when > 0).
    pub dropped: u64,
    /// Sum of all record cycles (the serial, one-array-at-a-time cost).
    pub total_cycles: u64,
    /// Longest dependency chain through the DAG, weighted by record
    /// cycles. With pool barriers in the trace this equals the pool's
    /// wall-cycle delta over the traced window.
    pub critical_path_cycles: u64,
    /// Records on the critical path.
    pub critical_path_records: u64,
    /// Attribution per op kind (keyed by [`OpKind::as_str`]).
    pub by_kind: BTreeMap<&'static str, ProfileRow>,
    /// Attribution per kernel label (`"(unlabeled)"` bucket for none).
    pub by_kernel: BTreeMap<String, ProfileRow>,
    /// Attribution per array ([`POOL_STREAM`] renders as `pool`).
    pub by_array: BTreeMap<u16, ProfileRow>,
    /// Attribution per session ([`NO_SESSION`] renders as `-`).
    pub by_session: BTreeMap<u32, ProfileRow>,
}

/// Walks the trace's dependency DAG: computes the cycle-weighted
/// critical path and aggregates cycles/SRAM traffic into the profile's
/// attribution tables. Dependencies on records missing from the trace
/// (dropped by a bounded ring) are treated as already finished.
pub fn profile(trace: &OpTrace) -> Profile {
    let index: BTreeMap<u64, usize> = trace
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id, i))
        .collect();
    let n = trace.records.len();
    // finish[i] = r.cycles + max(finish[deps]); iterative DFS so deep
    // serial chains (every machine stream is one) cannot overflow the
    // host stack.
    let mut finish: Vec<u64> = vec![u64::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    for root in 0..n {
        if finish[root] != u64::MAX {
            continue;
        }
        stack.push(root);
        while let Some(&i) = stack.last() {
            if finish[i] != u64::MAX {
                stack.pop();
                continue;
            }
            let mut ready = true;
            let mut best = 0u64;
            for &d in &trace.records[i].deps {
                if d == 0 {
                    continue;
                }
                let Some(&j) = index.get(&d) else { continue };
                if j == i {
                    continue; // self-edge: corrupt input, ignore
                }
                if finish[j] == u64::MAX {
                    // unvisited dependency: defer unless it is already
                    // on the stack (a cycle, only possible in corrupt
                    // input) — then treat it as finished at 0
                    if stack.contains(&j) {
                        continue;
                    }
                    stack.push(j);
                    ready = false;
                } else {
                    best = best.max(finish[j]);
                }
            }
            if ready {
                stack.pop();
                finish[i] = trace.records[i].cycles.saturating_add(best);
            }
        }
    }

    // walk the path back from the latest finisher, marking its records
    let mut on_path = vec![false; n];
    let mut crit_cycles = 0u64;
    let mut crit_records = 0u64;
    if let Some(mut i) = (0..n).max_by_key(|&i| (finish[i], std::cmp::Reverse(i))) {
        crit_cycles = finish[i];
        loop {
            on_path[i] = true;
            crit_records += 1;
            let want = finish[i] - trace.records[i].cycles;
            let mut next = None;
            for &d in &trace.records[i].deps {
                if d == 0 {
                    continue;
                }
                if let Some(&j) = index.get(&d) {
                    if j != i && finish[j] == want && !on_path[j] {
                        next = Some(j);
                        break;
                    }
                }
            }
            match next {
                Some(j) if want > 0 => i = j,
                _ => break,
            }
        }
    }

    let mut p = Profile {
        records: n as u64,
        dropped: trace.dropped,
        critical_path_cycles: crit_cycles,
        critical_path_records: crit_records,
        ..Profile::default()
    };
    for (i, r) in trace.records.iter().enumerate() {
        p.total_cycles += r.cycles;
        p.by_kind
            .entry(r.kind.as_str())
            .or_default()
            .add(r, on_path[i]);
        let kernel = trace.label(r.label).unwrap_or("(unlabeled)").to_string();
        p.by_kernel.entry(kernel).or_default().add(r, on_path[i]);
        p.by_array.entry(r.array).or_default().add(r, on_path[i]);
        p.by_session
            .entry(r.session)
            .or_default()
            .add(r, on_path[i]);
    }
    p
}

impl Profile {
    /// Renders the attribution tables as deterministic fixed-width
    /// text (the `out/profile_*.txt` golden format).
    pub fn render(&self, w: &EnergyWeights) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "op trace profile");
        let _ = writeln!(
            out,
            "  records        : {} ({} dropped)",
            self.records, self.dropped
        );
        let _ = writeln!(out, "  total cycles   : {} (serial sum)", self.total_cycles);
        let _ = writeln!(
            out,
            "  critical path  : {} cycles over {} records",
            self.critical_path_cycles, self.critical_path_records
        );
        for (title, rows) in [
            ("kind", fmt_keys(&self.by_kind, |k| k.to_string())),
            ("kernel", fmt_keys(&self.by_kernel, |k| k.clone())),
            ("array", fmt_keys(&self.by_array, |&a| stream_name(a))),
            (
                "session",
                fmt_keys(&self.by_session, |&s| {
                    if s == NO_SESSION {
                        "-".to_string()
                    } else {
                        format!("session {s}")
                    }
                }),
            ),
        ] {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "  by {title:<18} {:>10} {:>14} {:>12} {:>14} {:>16}",
                "count", "cycles", "sram", "crit-cycles", "energy-pJ"
            );
            for (name, row) in rows {
                let _ = writeln!(
                    out,
                    "    {name:<19} {:>10} {:>14} {:>12} {:>14} {:>16.1}",
                    row.count,
                    row.cycles,
                    row.sram,
                    row.crit_cycles,
                    row.energy_pj(w)
                );
            }
        }
        out
    }
}

/// Display name of an [`OpRecord::array`] stream index: `pool` for the
/// sync stream, `dma a` for array `a`'s DMA channel lane
/// ([`DMA_LANE_BASE`]), `array a` otherwise.
pub fn stream_name(a: u16) -> String {
    if a == POOL_STREAM {
        "pool".to_string()
    } else if a & DMA_LANE_BASE != 0 {
        format!("dma {}", a & !DMA_LANE_BASE)
    } else {
        format!("array {a}")
    }
}

fn fmt_keys<K: Ord + Clone, F: Fn(&K) -> String>(
    map: &BTreeMap<K, ProfileRow>,
    f: F,
) -> Vec<(String, ProfileRow)> {
    map.iter().map(|(k, v)| (f(k), *v)).collect()
}

// ---------------------------------------------------------------------
// Perfetto conversion
// ---------------------------------------------------------------------

/// Converts a (small) trace window to Chrome/Perfetto trace-event JSON:
/// one cycle-domain lane per array stream, each record a complete span
/// named by its kernel label and kind. Intended for windows of up to a
/// few hundred thousand records — the binary format is the scalable
/// one; this is the microscope.
pub fn to_perfetto(trace: &OpTrace) -> String {
    let snap = crate::TelemetrySnapshot {
        spans: trace
            .records
            .iter()
            .map(|r| crate::SpanRecord {
                domain: crate::TimeDomain::Cycles,
                track: stream_name(r.array),
                name: match trace.label(r.label) {
                    Some(l) => format!("{l} {}", r.kind.as_str()),
                    None => r.kind.as_str().to_string(),
                },
                start: r.start,
                dur: r.cycles,
                frame: None,
                args: vec![
                    ("id".to_string(), r.id.to_string()),
                    (
                        "deps".to_string(),
                        r.deps
                            .iter()
                            .filter(|&&d| d != 0)
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                ],
            })
            .collect(),
        ..Default::default()
    };
    crate::perfetto::export(&snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, deps: [u64; 3], cycles: u64) -> OpRecord {
        OpRecord {
            id,
            deps,
            start: 0,
            cycles,
            sram: 1,
            size: 320,
            rows: [0, NO_ROW],
            dst: NO_ROW,
            session: NO_SESSION,
            label: NO_LABEL,
            kind: OpKind::AddSub,
            array: 0,
        }
    }

    fn sample() -> OpTrace {
        let mut t = OpTrace::new();
        let l = t.intern("lpf_pass1");
        t.records = vec![
            rec(1, [0; 3], 3),
            rec(2, [1, 0, 0], 5),
            OpRecord {
                label: l,
                kind: OpKind::Mul,
                ..rec(3, [1, 0, 0], 7)
            },
            OpRecord {
                kind: OpKind::Barrier,
                array: POOL_STREAM,
                ..rec(4, [2, 3, 0], 2)
            },
        ];
        t
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let t = sample();
        let bytes = t.encode();
        let back = OpTrace::decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        let t = sample();
        let bytes = t.encode();

        assert!(matches!(
            OpTrace::decode(&bytes[..10]),
            Err(OpTraceError::Truncated)
        ));

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(OpTrace::decode(&bad), Err(OpTraceError::BadMagic)));

        let mut bad = bytes.clone();
        bad[20] ^= 0x10; // flip a body bit: CRC must catch it
        assert!(matches!(
            OpTrace::decode(&bad),
            Err(OpTraceError::Crc { .. })
        ));

        // a version flip re-CRC'd: reaches the version check
        let mut bad = bytes.clone();
        bad[8] = 0xEE;
        let len = bad.len();
        let crc = crc32(&bad[8..len - 4]).to_le_bytes();
        bad[len - 4..].copy_from_slice(&crc);
        assert!(matches!(
            OpTrace::decode(&bad),
            Err(OpTraceError::Version(0xEE))
        ));

        // truncating whole records also breaks the CRC, never panics
        let cut = &bytes[..bytes.len() - OP_RECORD_LEN as usize];
        assert!(OpTrace::decode(cut).is_err());
    }

    #[test]
    fn merge_remaps_labels() {
        let mut a = OpTrace::new();
        let la = a.intern("hpf");
        a.records.push(OpRecord {
            label: la,
            ..rec(1, [0; 3], 1)
        });
        let mut b = OpTrace::new();
        b.intern("padding");
        let lb = b.intern("hpf");
        b.records.push(OpRecord {
            label: lb,
            ..rec(10, [0; 3], 1)
        });
        b.dropped = 2;
        a.merge(b);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.label(a.records[1].label), Some("hpf"));
        assert_eq!(a.labels.len(), 2, "shared labels deduplicate");
    }

    #[test]
    fn critical_path_takes_the_longest_branch() {
        // diamond: 1 -> {2 (5cy), 3 (7cy)} -> 4; path = 3 + 7 + 2 = 12
        let t = sample();
        let p = profile(&t);
        assert_eq!(p.total_cycles, 17);
        assert_eq!(p.critical_path_cycles, 12);
        assert_eq!(p.critical_path_records, 3);
        assert_eq!(p.by_kind["mul"].crit_cycles, 7);
        assert_eq!(p.by_kind["addsub"].crit_cycles, 3, "only record 1");
        assert_eq!(p.by_kernel["lpf_pass1"].cycles, 7);
        assert_eq!(p.by_array[&POOL_STREAM].count, 1);
    }

    #[test]
    fn dangling_deps_profile_without_panicking() {
        let mut t = OpTrace::new();
        t.records = vec![rec(5, [4, 0, 0], 6)]; // dep 4 was dropped
        t.dropped = 4;
        let p = profile(&t);
        assert_eq!(p.critical_path_cycles, 6);
        assert_eq!(p.dropped, 4);
    }

    #[test]
    fn render_is_deterministic() {
        let t = sample();
        let w = EnergyWeights {
            op_pj: 0.5,
            sram_pj: 2.0,
        };
        let p = profile(&t);
        let s = p.render(&w);
        assert_eq!(s, profile(&t).render(&w));
        assert!(s.contains("critical path  : 12 cycles"));
        assert!(s.contains("lpf_pass1"));
        assert!(s.contains("pool"));
    }

    #[test]
    fn perfetto_window_names_lanes_per_array() {
        let s = to_perfetto(&sample());
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("array 0"));
        assert!(s.contains("\"pool\""));
        assert!(s.contains("lpf_pass1 mul"));
    }

    #[test]
    fn dma_kinds_roundtrip_and_name_channel_lanes() {
        for k in [OpKind::DmaIn, OpKind::DmaOut, OpKind::DmaStall] {
            assert_eq!(OpKind::from_u16(k as u16), Some(k));
        }
        assert_eq!(stream_name(DMA_LANE_BASE | 3), "dma 3");
        assert_eq!(stream_name(POOL_STREAM), "pool");
        assert_eq!(stream_name(2), "array 2");

        let mut t = OpTrace::new();
        t.records = vec![OpRecord {
            kind: OpKind::DmaIn,
            array: DMA_LANE_BASE | 1,
            ..rec(1, [0; 3], 22)
        }];
        let back = OpTrace::decode(&t.encode()).unwrap();
        assert_eq!(back, t);
        let s = to_perfetto(&t);
        assert!(s.contains("dma 1"));
        assert!(s.contains("dma_in"));
    }
}
