#![warn(missing_docs)]

//! Dependency-free observability layer for the pimvo workspace.
//!
//! The paper's headline numbers (11× speed-up, ~20.8× energy, the
//! Fig. 10 breakdowns) are *measurements*; this crate gives every layer
//! of the reproduction a first-class way to surface its own — without
//! pulling a single external dependency into the vendored-offline
//! workspace.
//!
//! # Model
//!
//! A [`Telemetry`] value is a cheap, cloneable handle. It is either
//! **off** (the default, [`Telemetry::off`]) — every recording method is
//! a single branch on a `None`, nothing allocates, nothing locks — or
//! **on** ([`Telemetry::new`] / [`Telemetry::with_clock`]), in which
//! case records accumulate in a shared registry behind a mutex.
//! Instrumented code holds a handle unconditionally; the zero-cost-off
//! path is what lets the hooks live permanently in `PimMachine`,
//! `PimArrayPool` and the tracker without perturbing the paper's
//! cycle/energy numbers (a property the test-suite asserts).
//!
//! Two time domains coexist:
//!
//! * **wall time** — host nanoseconds from the registry's single
//!   [`Clock`] source. RAII [`SpanGuard`]s record these; tests inject a
//!   [`ManualClock`] so exported traces are byte-deterministic.
//! * **PIM cycles** — the simulator's own clock. Cycle-domain spans are
//!   recorded explicitly ([`Telemetry::record_span`]) from counter
//!   deltas (`ExecStats::cycles`, `PimArrayPool::wall_cycles`), after
//!   the fact, so worker threads never touch the registry.
//!
//! # Exporters
//!
//! * [`Telemetry::perfetto_json`] — Chrome/Perfetto trace-event JSON.
//!   Wall-time tracks and PIM-cycle tracks render as two separate
//!   processes; spans nest by containment (frame → stage → pool phase →
//!   shard → macro-op).
//! * [`Telemetry::metrics_text`] — a Prometheus-style text snapshot of
//!   every counter and gauge, deterministically ordered.
//! * [`Telemetry::log_jsonl`] — the structured event log, one JSON
//!   object per line with timestamp, frame id and severity.

mod clock;
/// Minimal hand-rolled JSON serialization helpers (the crate is
/// dependency-free); also used by `pimvo-bench` for its report files.
pub mod json;
mod metrics;
pub mod optrace;
mod perfetto;
mod record;

pub use clock::{Clock, ManualClock, WallClock};
pub use record::{EventKind, LogRecord, Severity, SpanRecord, TimeDomain};

use std::sync::{Arc, Mutex, MutexGuard};

/// The accumulated telemetry state behind an enabled handle.
#[derive(Debug)]
struct Registry {
    clock: Box<dyn Clock>,
    spans: Vec<SpanRecord>,
    logs: Vec<LogRecord>,
    counters: std::collections::BTreeMap<String, f64>,
    gauges: std::collections::BTreeMap<String, f64>,
    current_frame: Option<u64>,
}

impl Registry {
    fn new(clock: Box<dyn Clock>) -> Self {
        Registry {
            clock,
            spans: Vec::new(),
            logs: Vec::new(),
            counters: std::collections::BTreeMap::new(),
            gauges: std::collections::BTreeMap::new(),
            current_frame: None,
        }
    }
}

/// An immutable copy of everything a [`Telemetry`] registry recorded,
/// taken by [`Telemetry::snapshot`]. Exporters consume snapshots, so an
/// export never holds the registry lock while formatting.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Every recorded span, in recording order.
    pub spans: Vec<SpanRecord>,
    /// Every structured log event, in recording order.
    pub logs: Vec<LogRecord>,
    /// Monotonic counters, keyed by full metric name (labels included).
    pub counters: std::collections::BTreeMap<String, f64>,
    /// Point-in-time gauges, keyed by full metric name.
    pub gauges: std::collections::BTreeMap<String, f64>,
}

/// A cheap, cloneable telemetry handle — either off (default; every
/// method is a no-op behind one branch) or backed by a shared registry.
///
/// ```
/// use pimvo_telemetry::{ManualClock, Telemetry};
///
/// let tele = Telemetry::with_clock(Box::new(ManualClock::with_step(1_000)));
/// {
///     let mut span = tele.span("tracker", "frame");
///     span.arg("features", "1234");
/// } // recorded on drop
/// assert_eq!(tele.snapshot().spans.len(), 1);
///
/// let off = Telemetry::off();
/// off.counter_add("ignored_total", 1.0); // no-op, no allocation
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl Telemetry {
    /// The disabled handle: every recording method is a no-op.
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle using the host wall clock.
    pub fn new() -> Self {
        Self::with_clock(Box::new(WallClock::start()))
    }

    /// An enabled handle with an injected [`Clock`] — the one seam
    /// through which every wall-time field flows, so tests that install
    /// a [`ManualClock`] get byte-deterministic exports.
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Registry::new(clock)))),
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Registry>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Sets the frame id attached to subsequently recorded spans and
    /// log events (until the next call).
    pub fn set_frame(&self, frame: u64) {
        if let Some(mut r) = self.lock() {
            r.current_frame = Some(frame);
        }
    }

    /// Opens a wall-time span on `track`; the span is recorded when the
    /// returned guard drops. On a disabled handle the guard is inert
    /// and the name is never materialized.
    pub fn span(&self, track: &str, name: &str) -> SpanGuard {
        let start = match self.lock() {
            Some(mut r) => r.clock.now_ns(),
            None => return SpanGuard::inert(),
        };
        SpanGuard {
            tele: self.clone(),
            track: track.to_string(),
            name: name.to_string(),
            start_ns: start,
            args: Vec::new(),
        }
    }

    /// Records a span with explicit start/duration — the cycle-domain
    /// path, fed from simulator counter deltas after a phase completes.
    pub fn record_span(
        &self,
        domain: TimeDomain,
        track: &str,
        name: &str,
        start: u64,
        dur: u64,
        args: &[(&str, String)],
    ) {
        if let Some(mut r) = self.lock() {
            let frame = r.current_frame;
            r.spans.push(SpanRecord {
                domain,
                track: track.to_string(),
                name: name.to_string(),
                start,
                dur,
                frame,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Adds `v` to the monotonic counter `name` (created at zero).
    pub fn counter_add(&self, name: &str, v: f64) {
        if let Some(mut r) = self.lock() {
            *r.counters.entry(name.to_string()).or_insert(0.0) += v;
        }
    }

    /// Adds `v` to a labeled counter, e.g.
    /// `counter_add_labeled("transitions_total", &[("from", "ok"), ("to", "lost")], 1.0)`.
    pub fn counter_add_labeled(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if self.inner.is_none() {
            return;
        }
        self.counter_add(&metrics::labeled_key(name, labels), v);
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(mut r) = self.lock() {
            r.gauges.insert(name.to_string(), v);
        }
    }

    /// Appends a structured event to the JSONL log. `fields` are
    /// key/value pairs serialized verbatim as JSON strings.
    pub fn log(&self, severity: Severity, message: &str, fields: &[(&str, String)]) {
        if let Some(mut r) = self.lock() {
            let ts_ns = r.clock.now_ns();
            let frame = r.current_frame;
            r.logs.push(LogRecord {
                ts_ns,
                severity,
                frame,
                message: message.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        }
    }

    /// Records a typed supervision event: a structured log entry whose
    /// first field is the stable `kind` wire name, plus a bump of the
    /// `pimvo_events_total{kind=...}` counter. The severity comes from
    /// the kind, so every `DeadlineMiss` is a warning and every
    /// `CheckpointRejected` an error regardless of the call site.
    pub fn event(&self, kind: EventKind, fields: &[(&str, String)]) {
        if self.inner.is_none() {
            return;
        }
        self.counter_add_labeled("pimvo_events_total", &[("kind", kind.as_str())], 1.0);
        let mut all: Vec<(&str, String)> = Vec::with_capacity(fields.len() + 1);
        all.push(("kind", kind.as_str().to_string()));
        all.extend_from_slice(fields);
        self.log(kind.severity(), kind.as_str(), &all);
    }

    /// Copies out everything recorded so far. Returns an empty snapshot
    /// on a disabled handle.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match self.lock() {
            Some(r) => TelemetrySnapshot {
                spans: r.spans.clone(),
                logs: r.logs.clone(),
                counters: r.counters.clone(),
                gauges: r.gauges.clone(),
            },
            None => TelemetrySnapshot::default(),
        }
    }

    /// Exports the recorded spans and log events as Chrome/Perfetto
    /// trace-event JSON (load at `ui.perfetto.dev` or `chrome://tracing`).
    pub fn perfetto_json(&self) -> String {
        perfetto::export(&self.snapshot())
    }

    /// Exports counters and gauges as a Prometheus-style text snapshot.
    pub fn metrics_text(&self) -> String {
        metrics::export(&self.snapshot())
    }

    /// Exports the structured event log as JSON Lines.
    pub fn log_jsonl(&self) -> String {
        record::export_jsonl(&self.snapshot())
    }
}

/// RAII guard for a wall-time span: opened by [`Telemetry::span`],
/// recorded when dropped. Inert (field-empty, allocation-free) when the
/// handle is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    tele: Telemetry,
    track: String,
    name: String,
    start_ns: u64,
    args: Vec<(String, String)>,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            tele: Telemetry::off(),
            track: String::new(),
            name: String::new(),
            start_ns: 0,
            args: Vec::new(),
        }
    }

    /// Attaches a key/value argument shown in the trace viewer.
    pub fn arg(&mut self, key: &str, value: impl Into<String>) {
        if self.tele.is_enabled() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut r) = self.tele.lock() {
            let end = r.clock.now_ns();
            let frame = r.current_frame;
            r.spans.push(SpanRecord {
                domain: TimeDomain::Wall,
                track: std::mem::take(&mut self.track),
                name: std::mem::take(&mut self.name),
                start: self.start_ns,
                dur: end.saturating_sub(self.start_ns),
                frame,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> Telemetry {
        Telemetry::with_clock(Box::new(ManualClock::with_step(500)))
    }

    #[test]
    fn off_handle_records_nothing() {
        let t = Telemetry::off();
        {
            let mut s = t.span("a", "b");
            s.arg("k", "v");
        }
        t.counter_add("c", 1.0);
        t.gauge_set("g", 2.0);
        t.log(Severity::Info, "hello", &[]);
        t.record_span(TimeDomain::Cycles, "x", "y", 0, 10, &[]);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.logs.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(t.perfetto_json().contains("traceEvents"));
    }

    #[test]
    fn wall_span_uses_injected_clock() {
        let t = manual();
        {
            let _s = t.span("tracker", "frame");
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.domain, TimeDomain::Wall);
        assert_eq!(s.start, 0);
        assert_eq!(s.dur, 500);
    }

    #[test]
    fn frame_id_attaches_to_spans_and_logs() {
        let t = manual();
        t.set_frame(7);
        t.record_span(TimeDomain::Cycles, "pool", "lpf", 10, 20, &[]);
        t.log(
            Severity::Warn,
            "degraded",
            &[("residual", "3.5".to_string())],
        );
        let snap = t.snapshot();
        assert_eq!(snap.spans[0].frame, Some(7));
        assert_eq!(snap.logs[0].frame, Some(7));
        assert_eq!(snap.logs[0].severity, Severity::Warn);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let t = manual();
        t.counter_add("frames_total", 1.0);
        t.counter_add("frames_total", 1.0);
        t.counter_add_labeled("transitions_total", &[("from", "ok"), ("to", "lost")], 1.0);
        t.gauge_set("residual", 0.25);
        t.gauge_set("residual", 0.5);
        let snap = t.snapshot();
        assert_eq!(snap.counters["frames_total"], 2.0);
        assert_eq!(
            snap.counters["transitions_total{from=\"ok\",to=\"lost\"}"],
            1.0
        );
        assert_eq!(snap.gauges["residual"], 0.5);
    }

    #[test]
    fn clones_share_one_registry() {
        let t = manual();
        let u = t.clone();
        u.counter_add("shared", 1.0);
        assert_eq!(t.snapshot().counters["shared"], 1.0);
    }
}
