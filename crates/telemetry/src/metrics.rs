//! Prometheus-style text snapshot of counters and gauges.
//!
//! The exposition format is the plain-text scrape format: one
//! `# TYPE` line per metric family followed by `name{labels} value`
//! samples. Keys iterate from `BTreeMap`s, so the snapshot is
//! deterministically ordered — the determinism tests compare it
//! byte-for-byte across runs.

use crate::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Builds the full metric key for a labeled sample:
/// `name{k1="v1",k2="v2"}`.
pub fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Family (metric name without labels) of a sample key.
fn family(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

fn export_kind(out: &mut String, kind: &str, samples: &BTreeMap<String, f64>) {
    let mut last_family = "";
    for (key, value) in samples {
        let fam = family(key);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            last_family = fam;
        }
        let _ = writeln!(out, "{key} {value}");
    }
}

/// Serializes the snapshot's counters and gauges as Prometheus text.
pub fn export(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    export_kind(&mut out, "counter", &snap.counters);
    export_kind(&mut out, "gauge", &snap.gauges);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_keys_escape_quotes() {
        assert_eq!(labeled_key("a_total", &[]), "a_total");
        assert_eq!(
            labeled_key("a_total", &[("s", "he\"llo")]),
            "a_total{s=\"he\\\"llo\"}"
        );
    }

    #[test]
    fn exports_type_lines_once_per_family() {
        let mut snap = TelemetrySnapshot::default();
        snap.counters.insert("x_total{a=\"1\"}".to_string(), 2.0);
        snap.counters.insert("x_total{a=\"2\"}".to_string(), 3.0);
        snap.gauges.insert("g".to_string(), 0.5);
        let s = export(&snap);
        assert_eq!(s.matches("# TYPE x_total counter").count(), 1);
        assert!(s.contains("x_total{a=\"1\"} 2"));
        assert!(s.contains("x_total{a=\"2\"} 3"));
        assert!(s.contains("# TYPE g gauge\ng 0.5"));
    }
}
