//! Chrome/Perfetto trace-event JSON export.
//!
//! The snapshot renders as two "processes": pid 1 carries the
//! wall-time tracks (microsecond timestamps) and pid 2 the PIM-cycle
//! tracks (one trace µs per simulated cycle, so the viewer's time axis
//! reads directly in cycles). Each distinct track name becomes one
//! thread lane; Perfetto nests complete (`"ph":"X"`) events on a lane
//! by time containment, which is how frame → stage → pool-phase →
//! shard → macro-op hierarchies appear without explicit parent links.
//! Log events render as instant (`"ph":"i"`) markers on a `log` lane.

use crate::json;
use crate::record::TimeDomain;
use crate::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const WALL_PID: u32 = 1;
const CYCLES_PID: u32 = 2;
const LOG_TID: u32 = 0;

/// Serializes a snapshot as Chrome trace-event JSON (a `traceEvents`
/// wrapper object, loadable at `ui.perfetto.dev`).
pub fn export(snap: &TelemetrySnapshot) -> String {
    // assign tids per (pid, track) in order of first appearance so the
    // output is deterministic for a deterministic recording order
    let mut tids: BTreeMap<(u32, &str), u32> = BTreeMap::new();
    let mut order: Vec<(u32, &str)> = Vec::new();
    let mut next: BTreeMap<u32, u32> = BTreeMap::new();
    next.insert(WALL_PID, LOG_TID + 1);
    next.insert(CYCLES_PID, 1);
    for s in &snap.spans {
        let pid = pid_of(s.domain);
        let key = (pid, s.track.as_str());
        if let std::collections::btree_map::Entry::Vacant(e) = tids.entry(key) {
            let n = next.get_mut(&pid).expect("pid preseeded");
            e.insert(*n);
            order.push(key);
            *n += 1;
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&ev);
    };

    // metadata: process and thread names
    for (pid, name) in [(WALL_PID, "wall time"), (CYCLES_PID, "PIM cycles")] {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":{}}}}}",
                json::escaped(name)
            ),
        );
    }
    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":{LOG_TID},\"args\":{{\"name\":\"log\"}}}}"
        ),
    );
    for &(pid, track) in &order {
        let tid = tids[&(pid, track)];
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json::escaped(track)
            ),
        );
    }

    for s in &snap.spans {
        let pid = pid_of(s.domain);
        let tid = tids[&(pid, s.track.as_str())];
        let (ts, dur) = match s.domain {
            // wall ns -> trace µs with ns precision kept as decimals
            TimeDomain::Wall => (us(s.start), us(s.dur)),
            // one trace µs per cycle: the axis reads in cycles
            TimeDomain::Cycles => (format!("{}", s.start), format!("{}", s.dur)),
        };
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{",
            json::escaped(&s.name),
            json::escaped(domain_cat(s.domain)),
        );
        let mut first_arg = true;
        if let Some(f) = s.frame {
            let _ = write!(ev, "\"frame\":{f}");
            first_arg = false;
        }
        for (k, v) in &s.args {
            if !first_arg {
                ev.push(',');
            }
            first_arg = false;
            json::push_str_escaped(&mut ev, k);
            ev.push(':');
            json::push_str_escaped(&mut ev, v);
        }
        ev.push_str("}}");
        push(&mut out, &mut first, ev);
    }

    for e in &snap.logs {
        let mut ev = String::new();
        let _ = write!(
            ev,
            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{WALL_PID},\"tid\":{LOG_TID},\"args\":{{",
            json::escaped(&e.message),
            json::escaped(e.severity.as_str()),
            us(e.ts_ns),
        );
        let mut first_arg = true;
        if let Some(f) = e.frame {
            let _ = write!(ev, "\"frame\":{f}");
            first_arg = false;
        }
        for (k, v) in &e.fields {
            if !first_arg {
                ev.push(',');
            }
            first_arg = false;
            json::push_str_escaped(&mut ev, k);
            ev.push(':');
            json::push_str_escaped(&mut ev, v);
        }
        ev.push_str("}}");
        push(&mut out, &mut first, ev);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn pid_of(domain: TimeDomain) -> u32 {
    match domain {
        TimeDomain::Wall => WALL_PID,
        TimeDomain::Cycles => CYCLES_PID,
    }
}

fn domain_cat(domain: TimeDomain) -> &'static str {
    match domain {
        TimeDomain::Wall => "wall",
        TimeDomain::Cycles => "cycles",
    }
}

/// Nanoseconds rendered as microseconds with fixed three decimals
/// (deterministic formatting).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogRecord, Severity, SpanRecord};

    fn span(domain: TimeDomain, track: &str, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            domain,
            track: track.to_string(),
            name: name.to_string(),
            start,
            dur,
            frame: Some(3),
            args: vec![("k".to_string(), "v".to_string())],
        }
    }

    #[test]
    fn exports_both_domains_with_metadata() {
        let snap = TelemetrySnapshot {
            spans: vec![
                span(TimeDomain::Wall, "tracker", "frame", 1_500, 2_000),
                span(TimeDomain::Cycles, "pool", "lpf", 10, 90),
            ],
            logs: vec![LogRecord {
                ts_ns: 2_000,
                severity: Severity::Warn,
                frame: Some(3),
                message: "degraded".to_string(),
                fields: vec![],
            }],
            ..Default::default()
        };
        let s = export(&snap);
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"name\":\"process_name\""));
        assert!(s.contains("\"name\":\"PIM cycles\""));
        assert!(s.contains("\"ts\":1.500,\"dur\":2.000,\"pid\":1"));
        assert!(s.contains("\"ts\":10,\"dur\":90,\"pid\":2"));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"frame\":3"));
        // track lanes are named
        assert!(s.contains("\"args\":{\"name\":\"tracker\"}"));
        assert!(s.contains("\"args\":{\"name\":\"pool\"}"));
    }

    #[test]
    fn deterministic_for_same_snapshot() {
        let snap = TelemetrySnapshot {
            spans: vec![span(TimeDomain::Cycles, "shard 0", "nms", 0, 5)],
            ..Default::default()
        };
        assert_eq!(export(&snap), export(&snap));
    }
}
