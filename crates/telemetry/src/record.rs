//! Recorded data: spans, log events and their JSONL serialization.

use crate::json;
use crate::TelemetrySnapshot;

/// Which clock a span's `start`/`dur` are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimeDomain {
    /// Host nanoseconds from the registry's [`crate::Clock`].
    Wall,
    /// Simulated PIM cycles (`ExecStats::cycles` /
    /// `PimArrayPool::wall_cycles` deltas).
    Cycles,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Time domain of `start` and `dur`.
    pub domain: TimeDomain,
    /// Track (rendered as a thread lane in Perfetto); spans on one
    /// track nest by time containment.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Start time: nanoseconds ([`TimeDomain::Wall`]) or cycles.
    pub start: u64,
    /// Duration in the same unit as `start`.
    pub dur: u64,
    /// Frame id current when the span was recorded.
    pub frame: Option<u64>,
    /// Key/value arguments shown by the trace viewer.
    pub args: Vec<(String, String)>,
}

/// Severity of a structured log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine progress.
    Info,
    /// Degradation that recovery is expected to absorb.
    Warn,
    /// Loss of service (tracking lost, pool exhausted).
    Error,
}

impl Severity {
    /// Lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Typed supervision events — the fixed vocabulary the deadline
/// supervisor and checkpoint layer emit through [`Telemetry::event`],
/// so consumers can match on a stable `kind` field instead of parsing
/// free-form messages. Each kind carries a canonical wire name and a
/// severity.
///
/// [`Telemetry::event`]: crate::Telemetry::event
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A frame exceeded its compute budget (cycles and/or wall time).
    DeadlineMiss,
    /// The degradation ladder moved to a different rung.
    DegradeRungChanged,
    /// A tracker snapshot was written (atomically) to disk.
    CheckpointWritten,
    /// Tracker state was restored from a snapshot.
    CheckpointRestored,
    /// A snapshot was rejected (corrupt, truncated, wrong version or
    /// config mismatch) and the tracker fell back to re-initialization.
    CheckpointRejected,
}

impl EventKind {
    /// Stable lower-snake-case wire name (the `kind` log field and the
    /// `pimvo_events_total` counter label).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::DeadlineMiss => "deadline_miss",
            EventKind::DegradeRungChanged => "degrade_rung_changed",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::CheckpointRestored => "checkpoint_restored",
            EventKind::CheckpointRejected => "checkpoint_rejected",
        }
    }

    /// Severity the event is logged at.
    pub fn severity(self) -> Severity {
        match self {
            EventKind::DeadlineMiss => Severity::Warn,
            EventKind::DegradeRungChanged => Severity::Info,
            EventKind::CheckpointWritten => Severity::Info,
            EventKind::CheckpointRestored => Severity::Info,
            EventKind::CheckpointRejected => Severity::Error,
        }
    }
}

/// One structured event in the JSONL log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Wall timestamp, nanoseconds from the registry clock.
    pub ts_ns: u64,
    /// Event severity.
    pub severity: Severity,
    /// Frame id current when the event was recorded.
    pub frame: Option<u64>,
    /// Human-readable message.
    pub message: String,
    /// Structured fields.
    pub fields: Vec<(String, String)>,
}

/// Serializes the snapshot's log as JSON Lines: one object per event
/// with `ts_ns`, `severity`, `frame` (when known), `msg` and every
/// structured field inlined.
pub fn export_jsonl(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for e in &snap.logs {
        out.push('{');
        out.push_str(&format!("\"ts_ns\":{}", e.ts_ns));
        out.push_str(",\"severity\":");
        json::push_str_escaped(&mut out, e.severity.as_str());
        if let Some(f) = e.frame {
            out.push_str(&format!(",\"frame\":{f}"));
        }
        out.push_str(",\"msg\":");
        json::push_str_escaped(&mut out, &e.message);
        for (k, v) in &e.fields {
            out.push(',');
            json::push_str_escaped(&mut out, k);
            out.push(':');
            json::push_str_escaped(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_one_object_per_line() {
        let snap = TelemetrySnapshot {
            logs: vec![
                LogRecord {
                    ts_ns: 5,
                    severity: Severity::Info,
                    frame: Some(1),
                    message: "frame ok".to_string(),
                    fields: vec![("features".to_string(), "120".to_string())],
                },
                LogRecord {
                    ts_ns: 9,
                    severity: Severity::Error,
                    frame: None,
                    message: "lost".to_string(),
                    fields: vec![],
                },
            ],
            ..Default::default()
        };
        let s = export_jsonl(&snap);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ts_ns\":5,\"severity\":\"info\",\"frame\":1,\"msg\":\"frame ok\",\"features\":\"120\"}"
        );
        assert!(lines[1].contains("\"severity\":\"error\""));
    }
}
