//! The single wall-time source behind a telemetry registry.
//!
//! Every wall-time field in every export flows through one [`Clock`]
//! owned by the registry; swapping it for a [`ManualClock`] makes the
//! otherwise non-deterministic parts of a trace byte-reproducible,
//! which is how the determinism tests compare full exports.

use std::fmt::Debug;
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Debug + Send {
    /// Nanoseconds since the clock's own epoch. Must be monotone
    /// non-decreasing across calls.
    fn now_ns(&mut self) -> u64;
}

/// The production clock: host monotonic time since construction.
#[derive(Debug)]
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn start() -> Self {
        WallClock {
            base: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&mut self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock: advances by a fixed step per query, so a
/// run that performs the same sequence of recordings produces the same
/// timestamps — and therefore byte-identical exports.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: u64,
    step: u64,
}

impl ManualClock {
    /// A clock starting at zero that advances by `step_ns` per query.
    pub fn with_step(step_ns: u64) -> Self {
        ManualClock {
            now: 0,
            step: step_ns,
        }
    }

    /// A frozen clock pinned at `now_ns` (step 0).
    pub fn frozen(now_ns: u64) -> Self {
        ManualClock {
            now: now_ns,
            step: 0,
        }
    }

    /// Advances the clock by `ns` without producing a sample.
    pub fn advance(&mut self, ns: u64) {
        self.now = self.now.saturating_add(ns);
    }
}

impl Clock for ManualClock {
    fn now_ns(&mut self) -> u64 {
        let t = self.now;
        self.now = self.now.saturating_add(self.step);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let mut c = WallClock::start();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_steps_deterministically() {
        let mut c = ManualClock::with_step(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        c.advance(100);
        assert_eq!(c.now_ns(), 120);
    }

    #[test]
    fn frozen_clock_never_moves() {
        let mut c = ManualClock::frozen(42);
        assert_eq!(c.now_ns(), 42);
        assert_eq!(c.now_ns(), 42);
    }
}
