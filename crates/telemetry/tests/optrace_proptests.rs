//! Property tests for the binary op-trace codec: arbitrary record
//! batches round-trip byte-identically, and corrupted containers come
//! back as typed errors, never panics.

use pimvo_telemetry::optrace::{
    crc32, OpRecord, OpTrace, OpTraceError, NO_LABEL, OPTRACE_MAGIC, OP_KINDS,
};
use proptest::prelude::*;

/// Expands one fuzz seed into derived material (splitmix64 step), so a
/// `vec(any::<u64>(), ..)` strategy drives every record field.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a structurally valid trace from raw fuzz seeds: ids are made
/// unique and non-zero, kinds valid, label indices in range.
fn build_trace(seeds: &[u64], nlabels: u64, dropped: u64) -> OpTrace {
    let mut t = OpTrace::new();
    for i in 0..nlabels {
        t.intern(&format!("kernel_{i}"));
    }
    for (i, &seed) in seeds.iter().enumerate() {
        let (a, b, c) = (mix(seed), mix(seed ^ 0xA5A5), mix(seed ^ 0x5A5A));
        t.records.push(OpRecord {
            id: ((i as u64 + 1) << 20) | (seed & 0xF_FFFF),
            deps: [a & 0x3FF, b & 0x3FF, c & 0x3FF],
            start: a >> 10,
            cycles: b >> 24,
            sram: c as u32,
            size: (a >> 32) as u32,
            rows: [b as u32, (b >> 32) as u32],
            dst: (c >> 32) as u32,
            session: (a >> 16) as u32,
            label: if nlabels == 0 || seed & 1 == 0 {
                NO_LABEL
            } else {
                ((c >> 8) % nlabels) as u32
            },
            kind: OP_KINDS[(seed >> 5) as usize % OP_KINDS.len()],
            array: seed as u16,
        });
    }
    t.dropped = dropped;
    t
}

proptest! {
    #[test]
    fn roundtrip_byte_identical(
        seeds in prop::collection::vec(any::<u64>(), 0..64),
        nlabels in 0u64..6,
        dropped in any::<u64>(),
    ) {
        let t = build_trace(&seeds, nlabels, dropped);
        let bytes = t.encode();
        let back = OpTrace::decode(&bytes).expect("valid container decodes");
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_rejected_with_typed_error(
        seeds in prop::collection::vec(any::<u64>(), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let t = build_trace(&seeds, 1, 0);
        let bytes = t.encode();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = OpTrace::decode(&bytes[..cut]).expect_err("truncated input must fail");
        // any typed error is fine; the property is "no panic, no Ok"
        let _ = format!("{err}");
    }

    #[test]
    fn bitflip_rejected_with_typed_error(
        seeds in prop::collection::vec(any::<u64>(), 1..16),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let t = build_trace(&seeds, 0, 0);
        let mut bytes = t.encode();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        // single-bit flips are always caught: magic check for the first
        // 8 bytes, CRC-32 for the body and the stored CRC itself
        match OpTrace::decode(&bytes) {
            Err(OpTraceError::BadMagic) => prop_assert!(pos < 8, "magic error from body flip at {pos}"),
            Err(_) => prop_assert!(pos >= 8, "body error from magic flip at {pos}"),
            Ok(_) => prop_assert!(false, "bit flip at byte {pos} accepted"),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // decode must return, not panic, on arbitrary input
        let _ = OpTrace::decode(&bytes);
    }

    #[test]
    fn crc_catches_every_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..64),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let base = crc32(&data);
        let mut flipped = data.clone();
        let pos = (pos_seed as usize) % flipped.len();
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(crc32(&flipped), base);
    }
}

#[test]
fn magic_is_stable() {
    // the on-disk magic is a compatibility contract; changing it breaks
    // every recorded flight dump
    assert_eq!(OPTRACE_MAGIC, b"PIMVOTRC");
}
