//! Property tests: the PIM CNN layer mappings equal the scalar
//! references for arbitrary kernels, biases, shifts and inputs.

use pimvo_cnn::{Conv3x3, Dense, FeatureMap, MaxPool2x2, PimCnn};
use pimvo_pim::{ArrayConfig, PimMachine};
use proptest::prelude::*;

fn random_map(seed: u64, w: u32, h: u32) -> FeatureMap {
    FeatureMap::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xD6E8FEB86659FD93);
        (v >> 56) as u8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_pim_equals_scalar(
        seed in any::<u64>(),
        w0 in -8i8..8, w1 in -8i8..8, w2 in -8i8..8,
        w3 in -8i8..8, w4 in -8i8..8, w5 in -8i8..8,
        w6 in -8i8..8, w7 in -8i8..8, w8 in -8i8..8,
        bias in -500i32..500,
        shift in 0u32..5,
        width in 6u32..24,
        height in 6u32..20,
    ) {
        let conv = Conv3x3::new([[w0, w1, w2], [w3, w4, w5], [w6, w7, w8]], bias, shift);
        let input = random_map(seed, width, height);
        let want = conv.forward_scalar(&input);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let got = PimCnn::new(&mut m, 0).conv3x3(&conv, &input);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pool_pim_equals_scalar(seed in any::<u64>(), w in 2u32..20, h in 2u32..16) {
        let input = random_map(seed, w * 2, h * 2);
        let want = MaxPool2x2.forward_scalar(&input);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let got = PimCnn::new(&mut m, 0).maxpool2x2(&input);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dense_pim_equals_scalar(
        seed in any::<u64>(),
        n_in in 1usize..80,
        n_out in 1usize..6,
    ) {
        let mix = |i: usize, o: usize| -> i8 {
            ((seed
                .wrapping_add((i * 31 + o * 17) as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                >> 57) as i8)
                .wrapping_sub(32)
        };
        let weights: Vec<Vec<i8>> = (0..n_out)
            .map(|o| (0..n_in).map(|i| mix(i, o)).collect())
            .collect();
        let bias: Vec<i32> = (0..n_out).map(|o| (o as i32 - 2) * 77).collect();
        let layer = Dense::new(weights, bias);
        let input: Vec<u8> = (0..n_in).map(|i| mix(i, 99) as u8).collect();
        let want = layer.forward_scalar(&input);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let got = PimCnn::new(&mut m, 0).dense(&layer, &input);
        prop_assert_eq!(got, want);
    }
}
