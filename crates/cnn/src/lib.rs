#![warn(missing_docs)]

//! CNN inference on the bit-parallel SRAM-PIM.
//!
//! The paper closes (§6) with: *"The proposed SRAM-PIM architecture has
//! developed a general-purpose SIMD computing scheme for image
//! processing and state estimation, and it may also benefit the
//! integration of a broader range of applications such as CNN."* This
//! crate substantiates that claim: quantized convolution, ReLU,
//! max-pooling and dense layers mapped onto the same
//! [`pimvo_pim::PimMachine`] the EBVO pipeline uses, with scalar
//! reference implementations that the PIM mappings must match
//! bit-for-bit.
//!
//! Quantization scheme (deliberately aligned with the EBVO datapath):
//! unsigned 8-bit activations, signed 8-bit weights, 32-bit
//! accumulators, power-of-two output rescaling with a fused
//! ReLU/clamp — all realizable with the machine's mul/add/shift/max
//! primitives.
//!
//! ```
//! use pimvo_cnn::{Conv3x3, FeatureMap};
//!
//! let input = FeatureMap::from_fn(8, 8, |x, y| ((x + y) * 16) as u8);
//! let conv = Conv3x3::new([[0, 0, 0], [0, 1, 0], [0, 0, 0]], 0, 0); // identity
//! let out = conv.forward_scalar(&input);
//! assert_eq!(out.get(3, 3), input.get(3, 3));
//! ```

mod layer;
mod net;
mod pim;
mod shapes;

pub use layer::{Conv3x3, Dense, FeatureMap, MaxPool2x2};
pub use net::{SmallNet, TrainReport};
pub use pim::{PimCnn, CNN_BASE_ROW};
pub use shapes::{render_shape, Shape};
