//! A small fixed-point CNN (conv → pool → conv → pool → dense) with a
//! trainable dense head, demonstrating end-to-end inference on the PIM.
//!
//! The convolutional feature extractor uses fixed, hand-designed
//! kernels (edge and blob detectors — in keeping with the crate's
//! inference-on-PIM scope); only the linear head is trained, with a
//! simple multi-class perceptron whose float weights are then quantized
//! to the signed 8-bit format the PIM consumes.

use crate::layer::{Conv3x3, Dense, FeatureMap, MaxPool2x2};
use crate::pim::PimCnn;
use crate::shapes::{render_shape, Shape};
use pimvo_pim::PimMachine;

/// The demo network: 32x32 input → conv3x3 → pool → conv3x3 → pool →
/// dense(3).
#[derive(Debug, Clone, PartialEq)]
pub struct SmallNet {
    /// First convolution (blob/average detector).
    pub conv1: Conv3x3,
    /// Second convolution (edge detector).
    pub conv2: Conv3x3,
    /// Classifier head (8x8 = 64 inputs, 3 logits).
    pub dense: Dense,
}

/// Training summary of the dense head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Training samples used.
    pub train_samples: usize,
    /// Accuracy on the held-out set, `[0, 1]`.
    pub test_accuracy: f64,
}

impl SmallNet {
    /// Fixed feature extractor with an untrained (zero) head.
    pub fn untrained() -> SmallNet {
        SmallNet {
            // binomial smoother: reduces render noise
            conv1: Conv3x3::new([[1, 2, 1], [2, 4, 2], [1, 2, 1]], 0, 4),
            // Laplacian-like contrast detector
            conv2: Conv3x3::new([[0, -1, 0], [-1, 4, -1], [0, -1, 0]], 0, 1),
            dense: Dense::new(vec![vec![0; 64]; 3], vec![0; 3]),
        }
    }

    /// Runs the feature extractor (scalar path) and returns the
    /// flattened 64-value embedding.
    pub fn features_scalar(&self, img: &FeatureMap) -> Vec<u8> {
        let x = self.conv1.forward_scalar(img);
        let x = MaxPool2x2.forward_scalar(&x);
        let x = self.conv2.forward_scalar(&x);
        let x = MaxPool2x2.forward_scalar(&x);
        x.flatten()
    }

    /// Full scalar forward pass: logits.
    pub fn forward_scalar(&self, img: &FeatureMap) -> Vec<i64> {
        self.dense.forward_scalar(&self.features_scalar(img))
    }

    /// Full forward pass on the PIM machine: logits.
    pub fn forward_pim(
        &self,
        machine: &mut PimMachine,
        base_row: usize,
        img: &FeatureMap,
    ) -> Vec<i64> {
        let mut cnn = PimCnn::new(machine, base_row);
        let x = cnn.conv3x3(&self.conv1, img);
        let x = cnn.maxpool2x2(&x);
        let x = cnn.conv3x3(&self.conv2, &x);
        let x = cnn.maxpool2x2(&x);
        cnn.dense(&self.dense, &x.flatten())
    }

    /// Predicted class (argmax of the logits).
    pub fn classify_scalar(&self, img: &FeatureMap) -> usize {
        argmax(&self.forward_scalar(img))
    }

    /// Trains the dense head with a multi-class perceptron on shape
    /// renders `0..train_seeds`, evaluates on the following
    /// `test_seeds`, and quantizes the learned weights to i8.
    pub fn train_head(&mut self, train_seeds: u32, test_seeds: u32, epochs: usize) -> TrainReport {
        // gather embeddings once (the extractor is fixed)
        let mut train: Vec<(Vec<u8>, usize)> = Vec::new();
        for seed in 0..train_seeds {
            for shape in Shape::all() {
                let img = render_shape(shape, seed);
                train.push((self.features_scalar(&img), shape.label()));
            }
        }
        // perceptron in f64
        let n_in = 64usize;
        let mut w = vec![vec![0.0f64; n_in]; 3];
        let mut b = [0.0f64; 3];
        let lr = 0.01;
        for _ in 0..epochs {
            for (x, label) in &train {
                let logits: Vec<f64> = (0..3)
                    .map(|o| {
                        b[o] + w[o]
                            .iter()
                            .zip(x)
                            .map(|(wi, &xi)| wi * xi as f64)
                            .sum::<f64>()
                    })
                    .collect();
                let pred = argmax_f(&logits);
                if pred != *label {
                    for (i, &xi) in x.iter().enumerate() {
                        w[*label][i] += lr * xi as f64;
                        w[pred][i] -= lr * xi as f64;
                    }
                    b[*label] += lr * 255.0;
                    b[pred] -= lr * 255.0;
                }
            }
        }
        // quantize to i8 (scale so the largest weight is ~100)
        let wmax = w
            .iter()
            .flatten()
            .fold(0.0f64, |acc, &v| acc.max(v.abs()))
            .max(1e-9);
        let scale = 100.0 / wmax;
        let wq: Vec<Vec<i8>> = w
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| (v * scale).round().clamp(-127.0, 127.0) as i8)
                    .collect()
            })
            .collect();
        let bq: Vec<i32> = b
            .iter()
            .map(|&v| (v * scale).round().clamp(i32::MIN as f64, i32::MAX as f64) as i32)
            .collect();
        self.dense = Dense::new(wq, bq);

        // held-out evaluation with the quantized head
        let mut correct = 0usize;
        let mut total = 0usize;
        for seed in train_seeds..train_seeds + test_seeds {
            for shape in Shape::all() {
                let img = render_shape(shape, seed);
                total += 1;
                if self.classify_scalar(&img) == shape.label() {
                    correct += 1;
                }
            }
        }
        TrainReport {
            train_samples: train.len(),
            test_accuracy: correct as f64 / total as f64,
        }
    }
}

fn argmax(v: &[i64]) -> usize {
    v.iter()
        .enumerate()
        .max_by_key(|(_, &x)| x)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn argmax_f(v: &[f64]) -> usize {
    let mut best = 0;
    for i in 1..v.len() {
        if v[i] > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_pim::ArrayConfig;

    #[test]
    fn head_trains_to_high_accuracy() {
        let mut net = SmallNet::untrained();
        let report = net.train_head(60, 15, 25);
        assert_eq!(report.train_samples, 180);
        assert!(
            report.test_accuracy >= 0.85,
            "accuracy {}",
            report.test_accuracy
        );
    }

    #[test]
    fn pim_forward_matches_scalar_bit_for_bit() {
        let mut net = SmallNet::untrained();
        let _ = net.train_head(20, 5, 8);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        for (i, shape) in Shape::all().iter().enumerate() {
            let img = render_shape(*shape, 100 + i as u32);
            let scalar = net.forward_scalar(&img);
            let pim = net.forward_pim(&mut m, 0, &img);
            assert_eq!(scalar, pim, "{shape:?}");
        }
    }

    #[test]
    fn classification_works_on_pim() {
        let mut net = SmallNet::untrained();
        let report = net.train_head(60, 10, 25);
        assert!(report.test_accuracy > 0.8);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let mut correct = 0;
        let mut total = 0;
        for seed in 200..210u32 {
            for shape in Shape::all() {
                let img = render_shape(shape, seed);
                let logits = net.forward_pim(&mut m, 0, &img);
                total += 1;
                correct += (argmax(&logits) == shape.label()) as usize;
            }
        }
        assert!(
            correct as f64 / total as f64 >= 0.75,
            "{correct}/{total} on PIM"
        );
    }
}
