//! Quantized CNN layers with exact scalar semantics.
//!
//! Every operation is defined in terms the PIM primitives can realize
//! (full-product multiply, arithmetic shift, branch-free max/min), and
//! [`crate::pim`] reproduces these definitions instruction by
//! instruction.

/// A single-channel feature map of unsigned 8-bit activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMap {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl FeatureMap {
    /// Zero-filled map.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be nonzero");
        FeatureMap {
            width,
            height,
            data: vec![0; (width * height) as usize],
        }
    }

    /// Builds a map from a per-pixel function.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut m = FeatureMap::new(width, height);
        for y in 0..height {
            for x in 0..width {
                m.data[(y * width + x) as usize] = f(x, y);
            }
        }
        m
    }

    /// Map width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Map height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Activation at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Activation with zero padding outside the map.
    pub fn get_zero(&self, x: i64, y: i64) -> u8 {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            0
        } else {
            self.data[(y as u32 * self.width + x as u32) as usize]
        }
    }

    /// Sets the activation at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "out of bounds");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Raw activations, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Flattens to an activation vector (for the dense head).
    pub fn flatten(&self) -> Vec<u8> {
        self.data.clone()
    }
}

/// A 3x3 convolution with signed 8-bit weights, 32-bit accumulation,
/// bias, power-of-two rescale and fused ReLU/clamp to `[0, 255]`.
///
/// Output semantics at pixel `(x, y)` (zero padding):
///
/// ```text
/// acc = bias + Σ_{ky,kx} w[ky][kx] · in(x+kx-1, y+ky-1)
/// out = clamp(acc >> shift, 0, 255)      // >> is arithmetic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conv3x3 {
    /// Kernel weights, `w[ky][kx]`, signed 8-bit range.
    pub weights: [[i8; 3]; 3],
    /// Bias added to the 32-bit accumulator.
    pub bias: i32,
    /// Arithmetic right shift applied before the ReLU clamp.
    pub shift: u32,
}

impl Conv3x3 {
    /// Creates a convolution layer.
    pub fn new(weights: [[i8; 3]; 3], bias: i32, shift: u32) -> Self {
        Conv3x3 {
            weights,
            bias,
            shift,
        }
    }

    /// Scalar reference forward pass.
    pub fn forward_scalar(&self, input: &FeatureMap) -> FeatureMap {
        let (w, h) = (input.width(), input.height());
        let mut out = FeatureMap::new(w, h);
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut acc: i64 = self.bias as i64;
                for (ky, row) in self.weights.iter().enumerate() {
                    for (kx, &wt) in row.iter().enumerate() {
                        acc +=
                            wt as i64 * input.get_zero(x + kx as i64 - 1, y + ky as i64 - 1) as i64;
                    }
                }
                let v = (acc >> self.shift).clamp(0, 255);
                out.set(x as u32, y as u32, v as u8);
            }
        }
        out
    }
}

/// 2x2 max pooling with stride 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxPool2x2;

impl MaxPool2x2 {
    /// Scalar reference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if either input dimension is odd.
    pub fn forward_scalar(&self, input: &FeatureMap) -> FeatureMap {
        assert!(
            input.width().is_multiple_of(2) && input.height().is_multiple_of(2),
            "pooling needs even dimensions"
        );
        let (w, h) = (input.width() / 2, input.height() / 2);
        let mut out = FeatureMap::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let m = input
                    .get(2 * x, 2 * y)
                    .max(input.get(2 * x + 1, 2 * y))
                    .max(input.get(2 * x, 2 * y + 1))
                    .max(input.get(2 * x + 1, 2 * y + 1));
                out.set(x, y, m);
            }
        }
        out
    }
}

/// A dense (fully connected) layer: signed 8-bit weights, 32-bit
/// accumulators, raw logits out (no activation — it feeds an argmax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dense {
    /// `weights[o]` is the weight row of output `o`.
    pub weights: Vec<Vec<i8>>,
    /// Per-output bias.
    pub bias: Vec<i32>,
}

impl Dense {
    /// Creates a dense layer.
    ///
    /// # Panics
    ///
    /// Panics if `weights` and `bias` lengths differ or rows have
    /// unequal lengths.
    pub fn new(weights: Vec<Vec<i8>>, bias: Vec<i32>) -> Self {
        assert_eq!(weights.len(), bias.len(), "weights/bias mismatch");
        if let Some(first) = weights.first() {
            assert!(
                weights.iter().all(|r| r.len() == first.len()),
                "ragged weight rows"
            );
        }
        Dense { weights, bias }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.weights.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Scalar reference forward pass: logits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the layer's input width.
    pub fn forward_scalar(&self, input: &[u8]) -> Vec<i64> {
        assert_eq!(input.len(), self.inputs(), "input size mismatch");
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(row, &b)| {
                b as i64
                    + row
                        .iter()
                        .zip(input)
                        .map(|(&w, &x)| w as i64 * x as i64)
                        .sum::<i64>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_conv_preserves_interior() {
        let input = FeatureMap::from_fn(8, 8, |x, y| (x * 8 + y) as u8);
        let conv = Conv3x3::new([[0, 0, 0], [0, 1, 0], [0, 0, 0]], 0, 0);
        let out = conv.forward_scalar(&input);
        assert_eq!(out, input);
    }

    #[test]
    fn box_blur_with_shift() {
        let input = FeatureMap::from_fn(6, 6, |_, _| 80);
        let conv = Conv3x3::new([[1; 3]; 3], 0, 3); // sum of 9 / 8
        let out = conv.forward_scalar(&input);
        // interior: 9*80/8 = 90
        assert_eq!(out.get(3, 3), 90);
        // corner: 4*80/8 = 40 (zero padding)
        assert_eq!(out.get(0, 0), 40);
    }

    #[test]
    fn relu_clamps_negative_and_saturates() {
        let input = FeatureMap::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 255 });
        let edge = Conv3x3::new([[0, 0, 0], [-1, 0, 1], [0, 0, 0]], 0, 0);
        let out = edge.forward_scalar(&input);
        assert_eq!(out.get(1, 2), 255); // +255 clamped at 255
        assert_eq!(out.get(2, 2), 255);
        assert_eq!(out.get(0, 1), 0); // negative -> ReLU zero
    }

    #[test]
    fn maxpool_halves_and_takes_max() {
        let input = FeatureMap::from_fn(4, 4, |x, y| (x + 4 * y) as u8);
        let out = MaxPool2x2.forward_scalar(&input);
        assert_eq!(out.width(), 2);
        assert_eq!(out.get(0, 0), 5);
        assert_eq!(out.get(1, 1), 15);
    }

    #[test]
    fn dense_computes_logits() {
        let d = Dense::new(vec![vec![1, -1], vec![2, 0]], vec![10, -5]);
        let logits = d.forward_scalar(&[3, 7]);
        assert_eq!(logits, vec![10 + 3 - 7, -5 + 6]);
    }

    #[test]
    #[should_panic(expected = "pooling needs even dimensions")]
    fn odd_pool_panics() {
        MaxPool2x2.forward_scalar(&FeatureMap::new(5, 4));
    }
}
