//! A tiny synthetic shape dataset (circle / square / triangle) for the
//! CNN demo — deterministic, parameterized by a seed.

use crate::layer::FeatureMap;

/// Shape classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// Filled circle.
    Circle,
    /// Filled axis-aligned square.
    Square,
    /// Filled upward triangle.
    Triangle,
}

impl Shape {
    /// All classes, label order.
    pub fn all() -> [Shape; 3] {
        [Shape::Circle, Shape::Square, Shape::Triangle]
    }

    /// Class label (0-2).
    pub fn label(self) -> usize {
        match self {
            Shape::Circle => 0,
            Shape::Square => 1,
            Shape::Triangle => 2,
        }
    }
}

fn hash01(mut x: u32) -> f64 {
    x = x.wrapping_mul(0x9E3779B9) ^ (x >> 16);
    x = x.wrapping_mul(0x85EBCA6B) ^ (x >> 13);
    (x as f64) / (u32::MAX as f64 + 1.0)
}

/// Renders a 32x32 image of the shape with seed-dependent position,
/// size, contrast and pixel noise.
pub fn render_shape(shape: Shape, seed: u32) -> FeatureMap {
    let cx = 14.0 + 4.0 * hash01(seed.wrapping_mul(3) + 1);
    let cy = 14.0 + 4.0 * hash01(seed.wrapping_mul(5) + 2);
    let r = 7.5 + 2.5 * hash01(seed.wrapping_mul(7) + 3);
    let fg = 170.0 + 70.0 * hash01(seed.wrapping_mul(11) + 4);
    let bg = 20.0 + 40.0 * hash01(seed.wrapping_mul(13) + 5);
    FeatureMap::from_fn(32, 32, |x, y| {
        let (fx, fy) = (x as f64 - cx, y as f64 - cy);
        let inside = match shape {
            Shape::Circle => fx * fx + fy * fy <= r * r,
            Shape::Square => fx.abs() <= r * 0.85 && fy.abs() <= r * 0.85,
            Shape::Triangle => {
                // upward triangle: |fx| grows linearly with fy
                fy >= -r && fy <= r && fx.abs() <= (fy + r) * 0.55
            }
        };
        let noise = (hash01(
            x.wrapping_mul(0x27D4EB2F)
                .wrapping_add(y.wrapping_mul(0x165667B1))
                .wrapping_add(seed),
        ) - 0.5)
            * 12.0;
        let v = if inside { fg } else { bg } + noise;
        v.clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_distinct_and_deterministic() {
        let a = render_shape(Shape::Circle, 1);
        let b = render_shape(Shape::Circle, 1);
        assert_eq!(a, b);
        let c = render_shape(Shape::Square, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn foreground_brighter_than_background() {
        for shape in Shape::all() {
            let img = render_shape(shape, 7);
            let max = img.data().iter().copied().max().unwrap();
            let min = img.data().iter().copied().min().unwrap();
            assert!(max as i32 - min as i32 > 80, "{shape:?} contrast");
        }
    }

    #[test]
    fn seeds_move_the_shape() {
        let a = render_shape(Shape::Square, 1);
        let b = render_shape(Shape::Square, 2);
        assert_ne!(a, b);
    }
}
