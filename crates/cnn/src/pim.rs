//! CNN layers executed on the PIM machine.
//!
//! Every mapping reproduces the scalar semantics of [`crate::layer`]
//! instruction by instruction (tests assert bit-equality). Feature maps
//! are stored one image row per word line in 32-bit lanes, so maps up
//! to 80 pixels wide fit a single `(320·8)`-bit row — ample for the
//! small-input CNN regime the paper's extension targets.
//!
//! Host I/O (loading inputs, reading results, the lane decimation
//! between a pooling layer and the next) is tracked separately from
//! compute, matching the EBVO pipeline's accounting. The final dense
//! head accumulates its handful of logits on the CPU, mirroring the
//! paper's treatment of the 6x6 solver.

#[cfg(test)]
use crate::layer::MaxPool2x2;
use crate::layer::{Conv3x3, Dense, FeatureMap};
use pimvo_pim::{LaneWidth, Operand, PimMachine, Signedness};

use Operand::{Row, Tmp};

/// Default base row for the CNN's staging area (above the EBVO
/// regions when sharing a machine).
pub const CNN_BASE_ROW: usize = 0;

/// Row-region offsets within the staging area.
struct CnnRows {
    base: usize,
}

impl CnnRows {
    const INPUT: usize = 0; // input feature map rows (up to 80)
    const OUTPUT: usize = 80; // output feature map rows
    const WEIGHTS: usize = 160; // 9 broadcast weight rows
    const BIAS: usize = 169;
    const ZERO: usize = 170;
    const C255: usize = 171;
    const ACC: usize = 172;
    const SHIFTED: usize = 173;
    /// Total rows the mapping needs.
    const SPAN: usize = 174;

    fn r(&self, off: usize) -> usize {
        self.base + off
    }
}

/// CNN layer execution on a [`PimMachine`].
#[derive(Debug)]
pub struct PimCnn<'m> {
    machine: &'m mut PimMachine,
    rows: CnnRows,
}

impl std::fmt::Debug for CnnRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CnnRows(base={})", self.base)
    }
}

impl<'m> PimCnn<'m> {
    /// Wraps a machine, staging CNN data starting at `base_row`.
    ///
    /// # Panics
    ///
    /// Panics if the machine lacks `base_row + 174` rows.
    pub fn new(machine: &'m mut PimMachine, base_row: usize) -> Self {
        assert!(
            base_row + CnnRows::SPAN <= machine.config().rows,
            "machine too small for the CNN staging area"
        );
        PimCnn {
            machine,
            rows: CnnRows { base: base_row },
        }
    }

    /// The wrapped machine (stats inspection).
    pub fn machine(&self) -> &PimMachine {
        self.machine
    }

    fn load_map(&mut self, base: usize, map: &FeatureMap) {
        self.machine.set_lanes(LaneWidth::W32, Signedness::Signed);
        for y in 0..map.height() {
            let lanes: Vec<i64> = (0..map.width()).map(|x| map.get(x, y) as i64).collect();
            self.machine
                .host_write_lanes(base + y as usize, &lanes)
                .expect("host I/O row in range");
        }
    }

    fn read_map(&mut self, base: usize, width: u32, height: u32) -> FeatureMap {
        self.machine.set_lanes(LaneWidth::W32, Signedness::Signed);
        let mut out = FeatureMap::new(width, height);
        for y in 0..height {
            let lanes = self.machine.host_read_lanes(base + y as usize);
            for x in 0..width {
                out.set(x, y, lanes[x as usize].clamp(0, 255) as u8);
            }
        }
        out
    }

    /// Runs a 3x3 convolution (+ fused ReLU/clamp) on the machine.
    ///
    /// # Panics
    ///
    /// Panics for maps wider than 80 pixels or taller than 80 rows.
    pub fn conv3x3(&mut self, conv: &Conv3x3, input: &FeatureMap) -> FeatureMap {
        let (w, h) = (input.width(), input.height());
        assert!(w <= 80 && h <= 80, "map exceeds the staging area");
        self.load_map(self.rows.r(CnnRows::INPUT), input);
        let base = self.rows.base;
        let rows = CnnRows { base };
        let m = &mut *self.machine;
        // broadcast constants once per layer (host I/O)
        for (ky, wrow) in conv.weights.iter().enumerate() {
            for (kx, &wt) in wrow.iter().enumerate() {
                m.host_broadcast(rows.r(CnnRows::WEIGHTS + 3 * ky + kx), wt as i64)
                    .expect("host I/O row in range");
            }
        }
        m.host_broadcast(rows.r(CnnRows::BIAS), conv.bias as i64)
            .expect("host I/O row in range");
        m.host_broadcast(rows.r(CnnRows::ZERO), 0)
            .expect("host I/O row in range");
        m.host_broadcast(rows.r(CnnRows::C255), 255)
            .expect("host I/O row in range");

        for y in 0..h as i64 {
            // acc starts at the bias
            m.load(Row(rows.r(CnnRows::BIAS)));
            m.writeback(rows.r(CnnRows::ACC));
            for ky in 0..3i64 {
                let src_y = y + ky - 1;
                if src_y < 0 || src_y >= h as i64 {
                    continue; // zero-padded row contributes nothing
                }
                let in_row = rows.r(CnnRows::INPUT) + src_y as usize;
                for kx in 0..3i64 {
                    let wt = conv.weights[ky as usize][kx as usize];
                    if wt == 0 {
                        continue; // zero taps are elided at compile time
                    }
                    m.shift_pix(Row(in_row), (kx - 1) as i32);
                    m.writeback(rows.r(CnnRows::SHIFTED));
                    m.mul_signed(
                        Row(rows.r(CnnRows::WEIGHTS + (3 * ky + kx) as usize)),
                        Row(rows.r(CnnRows::SHIFTED)),
                    );
                    m.add(Tmp, Row(rows.r(CnnRows::ACC)));
                    m.writeback(rows.r(CnnRows::ACC));
                }
            }
            // rescale + fused ReLU/clamp
            m.shr_bits(Row(rows.r(CnnRows::ACC)), conv.shift);
            m.max(Tmp, Row(rows.r(CnnRows::ZERO)));
            m.min(Tmp, Row(rows.r(CnnRows::C255)));
            m.writeback(rows.r(CnnRows::OUTPUT) + y as usize);
        }
        self.read_map(self.rows.r(CnnRows::OUTPUT), w, h)
    }

    /// Runs 2x2 max pooling on the machine. The in-row maxima are
    /// computed in the array; the lane decimation (keeping every second
    /// lane) is a host-side repack between layers, tracked as I/O.
    ///
    /// # Panics
    ///
    /// Panics for odd dimensions or maps wider than 80 pixels.
    pub fn maxpool2x2(&mut self, input: &FeatureMap) -> FeatureMap {
        let (w, h) = (input.width(), input.height());
        assert!(w % 2 == 0 && h % 2 == 0, "pooling needs even dimensions");
        assert!(w <= 80 && h <= 80, "map exceeds the staging area");
        self.load_map(self.rows.r(CnnRows::INPUT), input);
        let rows = CnnRows {
            base: self.rows.base,
        };
        let m = &mut *self.machine;
        m.set_lanes(LaneWidth::W32, Signedness::Signed);
        let mut out = FeatureMap::new(w / 2, h / 2);
        for oy in 0..h / 2 {
            let r0 = rows.r(CnnRows::INPUT) + (2 * oy) as usize;
            let r1 = r0 + 1;
            m.max(Row(r0), Row(r1)); // vertical pair max
            m.max_sh(Tmp, Tmp, 1); // horizontal pair max (lane 2x)
            m.writeback(rows.r(CnnRows::ACC));
            let lanes = m.host_read_lanes(rows.r(CnnRows::ACC));
            for ox in 0..w / 2 {
                out.set(ox, oy, lanes[(2 * ox) as usize].clamp(0, 255) as u8);
            }
        }
        out
    }

    /// Runs a dense layer: per output, a lane-parallel multiply and an
    /// in-array reduction; the few biased logits are summed on the CPU
    /// (as the paper does for its small 6x6 solve).
    ///
    /// # Panics
    ///
    /// Panics if the input exceeds 80 values.
    pub fn dense(&mut self, layer: &Dense, input: &[u8]) -> Vec<i64> {
        assert!(input.len() <= 80, "dense input exceeds one word line");
        assert_eq!(input.len(), layer.inputs(), "input size mismatch");
        let rows = CnnRows {
            base: self.rows.base,
        };
        let m = &mut *self.machine;
        m.set_lanes(LaneWidth::W32, Signedness::Signed);
        let in_lanes: Vec<i64> = input.iter().map(|&v| v as i64).collect();
        m.host_write_lanes(rows.r(CnnRows::INPUT), &in_lanes)
            .expect("host I/O row in range");
        layer
            .weights
            .iter()
            .zip(&layer.bias)
            .map(|(wrow, &b)| {
                let w_lanes: Vec<i64> = wrow.iter().map(|&w| w as i64).collect();
                m.host_write_lanes(rows.r(CnnRows::SHIFTED), &w_lanes)
                    .expect("host I/O row in range");
                m.mul_signed(Row(rows.r(CnnRows::INPUT)), Row(rows.r(CnnRows::SHIFTED)));
                b as i64 + m.reduce_sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimvo_pim::ArrayConfig;

    fn test_map() -> FeatureMap {
        FeatureMap::from_fn(16, 16, |x, y| {
            ((x * 37 + y * 11).wrapping_mul(2654435761) >> 24) as u8
        })
    }

    #[test]
    fn conv_matches_scalar_exactly() {
        let input = test_map();
        for conv in [
            Conv3x3::new([[1, 2, 1], [2, 4, 2], [1, 2, 1]], 0, 4),
            Conv3x3::new([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], 32, 1),
            Conv3x3::new([[0, -1, 0], [-1, 5, -1], [0, -1, 0]], -100, 0),
        ] {
            let want = conv.forward_scalar(&input);
            let mut m = PimMachine::new(ArrayConfig::qvga());
            let got = PimCnn::new(&mut m, 0).conv3x3(&conv, &input);
            assert_eq!(got, want, "conv {:?}", conv.weights);
        }
    }

    #[test]
    fn pool_matches_scalar_exactly() {
        let input = test_map();
        let want = MaxPool2x2.forward_scalar(&input);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let got = PimCnn::new(&mut m, 0).maxpool2x2(&input);
        assert_eq!(got, want);
    }

    #[test]
    fn dense_matches_scalar_exactly() {
        let input: Vec<u8> = (0..64).map(|i| (i * 4) as u8).collect();
        let layer = Dense::new(
            vec![
                (0..64).map(|i| ((i % 7) as i8) - 3).collect(),
                (0..64).map(|i| ((i % 5) as i8) - 2).collect(),
                (0..64).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect(),
            ],
            vec![100, -50, 7],
        );
        let want = layer.forward_scalar(&input);
        let mut m = PimMachine::new(ArrayConfig::qvga());
        let got = PimCnn::new(&mut m, 0).dense(&layer, &input);
        assert_eq!(got, want);
    }

    #[test]
    fn conv_cycle_cost_scales_with_nonzero_taps() {
        let input = test_map();
        let sparse = Conv3x3::new([[0, 0, 0], [0, 3, 0], [0, 0, 0]], 0, 0);
        let full = Conv3x3::new([[1; 3]; 3], 0, 3);
        let mut ms = PimMachine::new(ArrayConfig::qvga());
        let _ = PimCnn::new(&mut ms, 0).conv3x3(&sparse, &input);
        let mut mf = PimMachine::new(ArrayConfig::qvga());
        let _ = PimCnn::new(&mut mf, 0).conv3x3(&full, &input);
        assert!(
            mf.stats().cycles > 3 * ms.stats().cycles,
            "{} vs {}",
            mf.stats().cycles,
            ms.stats().cycles
        );
    }
}
