//! QVGA-scale cycle-count checks against the paper's Fig. 9.
//!
//! The paper reports (320x240, per frame): LPF 3107, HPF 9599, NMS 16411
//! cycles for the optimized mappings (29117 total), 1.7x more for the
//! naive mappings overall. Our simulator need not match the absolute
//! counts exactly — micro-op scheduling details differ — but must land in
//! the same regime: a few thousand cycles per kernel, tens of thousands
//! for the full detection, with the naive mappings clearly slower.

use pimvo_kernels::{ir, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine};

fn qvga_image() -> GrayImage {
    GrayImage::from_fn(320, 240, |x, y| {
        let t = ((x * 13 + y * 7).wrapping_mul(2654435761) >> 9) as u8;
        let block = if ((x / 40) + (y / 40)) % 2 == 0 {
            90
        } else {
            0
        };
        (t / 3).wrapping_add(block)
    })
}

#[test]
fn optimized_edge_detection_cycles_in_paper_regime() {
    let img = qvga_image();
    let cfg = EdgeConfig::default();
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));

    let c0 = m.stats().cycles;
    let lpf = ir::lpf(&mut m, &img, LowerLevel::Opt);
    let lpf_cycles = m.stats().cycles - c0;

    let c0 = m.stats().cycles;
    let hpf = ir::hpf(&mut m, &lpf, LowerLevel::Opt);
    let hpf_cycles = m.stats().cycles - c0;

    let c0 = m.stats().cycles;
    let _ = ir::nms(&mut m, &hpf, &cfg, LowerLevel::Opt);
    let nms_cycles = m.stats().cycles - c0;

    let total = lpf_cycles + hpf_cycles + nms_cycles;
    println!("opt cycles: lpf={lpf_cycles} hpf={hpf_cycles} nms={nms_cycles} total={total}");

    // paper: 3107 / 9599 / 16411 / 29117
    assert!((1_000..8_000).contains(&lpf_cycles), "lpf {lpf_cycles}");
    assert!((3_000..15_000).contains(&hpf_cycles), "hpf {hpf_cycles}");
    assert!((3_000..25_000).contains(&nms_cycles), "nms {nms_cycles}");
    assert!((8_000..45_000).contains(&total), "total {total}");
}

#[test]
fn naive_mappings_cost_more_with_identical_output() {
    let img = qvga_image();
    let cfg = EdgeConfig::default();

    let mut mo = PimMachine::new(ArrayConfig::qvga_banks(6));
    let opt = ir::edge_detect(&mut mo, &img, &cfg, LowerLevel::Opt);
    let mut mn = PimMachine::new(ArrayConfig::qvga_banks(6));
    let naive = ir::edge_detect(&mut mn, &img, &cfg, LowerLevel::Naive);

    assert_eq!(opt.mask, naive.mask);
    assert_eq!(opt.lpf, naive.lpf);
    assert_eq!(opt.hpf, naive.hpf);

    let (co, cn) = (mo.stats().cycles, mn.stats().cycles);
    let ratio = cn as f64 / co as f64;
    println!("opt={co} naive={cn} ratio={ratio:.2}");
    // paper: 1.7x overall for edge detection
    assert!(ratio > 1.3 && ratio < 5.0, "ratio {ratio}");
}

#[test]
fn scalar_and_pim_agree_at_qvga() {
    let img = qvga_image();
    let cfg = EdgeConfig::default();
    let want = scalar::edge_detect(&img, &cfg);
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let got = ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Opt);
    assert_eq!(got.mask, want.mask);
    let n = want.edge_count();
    // the paper's tracked-feature regime at QVGA
    println!("edge pixels: {n}");
    assert!(n > 1_000 && n < 20_000, "edge count {n}");
}

#[test]
fn writeback_share_is_small_after_tmp_reg_optimization() {
    // Fig. 10-b: SRAM writes are ~7 % of memory accesses in the
    // optimized pipeline thanks to Tmp-Reg chaining.
    let img = qvga_image();
    let cfg = EdgeConfig::default();
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    let _ = ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Opt);
    let mem = m.stats().mem_accesses();
    let share = mem.write_share();
    println!("write share: {share:.3}");
    assert!(share < 0.25, "write share {share}");
}
