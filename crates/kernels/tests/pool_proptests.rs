//! Property tests of the sharded multi-array pool: for random images
//! and pool sizes, every pooled kernel is bit-identical to the
//! single-array optimized mapping, and the distributed compute work
//! (cycles, op mix, SRAM traffic) is conserved exactly — only host
//! I/O (halo loads, boundary exchanges) may differ.

use pimvo_kernels::{ir, pim_pool, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine};
use proptest::prelude::*;

fn random_image(seed: u64, w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xD6E8FEB86659FD93);
        (v >> 56) as u8
    })
}

fn pool(n: usize) -> pimvo_pim::PimArrayPool {
    PimMachine::builder(ArrayConfig::qvga_banks(6)).build_pool(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pooled LPF is bit-identical to the single-array mapping for any
    /// image and pool size (including pools larger than the image).
    #[test]
    fn pooled_lpf_equals_single(seed in any::<u64>(), w in 12u32..72, h in 8u32..56, n in 1usize..7) {
        let img = random_image(seed, w, h);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::lpf(&mut m, &img, LowerLevel::Opt);
        let mut p = pool(n);
        let got = pim_pool::lpf(&mut p, &img);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&got, &scalar::lpf(&img));
    }

    /// Pooled HPF is bit-identical to the single-array mapping.
    #[test]
    fn pooled_hpf_equals_single(seed in any::<u64>(), w in 12u32..72, h in 8u32..56, n in 1usize..7) {
        let lpf_map = scalar::lpf(&random_image(seed, w, h));
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::hpf(&mut m, &lpf_map, LowerLevel::Opt);
        let mut p = pool(n);
        let got = pim_pool::hpf(&mut p, &lpf_map);
        prop_assert_eq!(&got, &want);
    }

    /// Pooled NMS is bit-identical to the single-array mapping.
    #[test]
    fn pooled_nms_equals_single(seed in any::<u64>(), w in 12u32..72, h in 8u32..56, n in 1usize..7) {
        let cfg = EdgeConfig::default();
        let hpf_map = scalar::hpf(&scalar::lpf(&random_image(seed, w, h)));
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::nms(&mut m, &hpf_map, &cfg, LowerLevel::Opt);
        let mut p = pool(n);
        let got = pim_pool::nms(&mut p, &hpf_map, &cfg);
        prop_assert_eq!(&got, &want);
    }

    /// The full pooled pipeline conserves the compute-op accounting
    /// exactly: merged cycles, ALU ops, SRAM traffic and the op
    /// histogram all equal the single-array run (host I/O rows are the
    /// only legitimate difference), and the wall clock never exceeds
    /// the single-array cycle count plus the sync overheads.
    #[test]
    fn pooled_pipeline_conserves_compute(seed in any::<u64>(), w in 16u32..64, h in 12u32..48, n in 2usize..6) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Opt);
        let mut p = pool(n);
        let got = pim_pool::edge_detect(&mut p, &img, &cfg);
        prop_assert_eq!(&got.lpf, &want.lpf);
        prop_assert_eq!(&got.hpf, &want.hpf);
        prop_assert_eq!(&got.mask, &want.mask);
        let merged = p.merged_stats();
        prop_assert_eq!(merged.cycles, m.stats().cycles);
        prop_assert_eq!(merged.acc_ops, m.stats().acc_ops);
        prop_assert_eq!(merged.sram_reads, m.stats().sram_reads);
        prop_assert_eq!(merged.sram_writes, m.stats().sram_writes);
        prop_assert_eq!(&merged.op_histogram, &m.stats().op_histogram);
        // wall bound: each barrier advances by the slowest member's
        // compute + transfer delta, so the total can never exceed the
        // conserved compute plus every transfer cycle the pool charged
        let budget = m.stats().cycles
            + merged.host_io_cycles
            + merged.dma_stall_cycles
            + p.barriers() * p.sync_cycles();
        prop_assert!(
            p.wall_cycles() <= budget,
            "wall {} exceeds single-array budget {}",
            p.wall_cycles(),
            budget
        );
    }
}
