//! Pass-pipeline prefix identity (satellite of the search-based
//! lowering refactor).
//!
//! The staged lowering pipeline ([`pimvo_pim::pass_pipeline`]) is only
//! allowed to change *cost*: every pass — and therefore every prefix
//! of the pass list, including the empty one — must produce machine
//! programs whose outputs are bit-identical to the scalar reference.
//! This suite pins that on random images across:
//!
//! * levels: `Naive`, `Opt`, `MultiReg(2)`, `MultiReg(4)`;
//! * kernels: LPF pass 1 + pass 2, HPF and NMS (through the full
//!   `edge_detect` which runs all five strip programs) and downsample;
//! * backends: a single `PimMachine` and a sharded `PimArrayPool`.

use pimvo_kernels::{ir, pim_pool, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{pass_pipeline, ArrayConfig, LowerLevel, PimMachine};
use proptest::prelude::*;

fn random_image(seed: u64, w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xD6E8FEB86659FD93);
        (v >> 56) as u8
    })
}

const LEVELS: [LowerLevel; 4] = [
    LowerLevel::Naive,
    LowerLevel::Opt,
    LowerLevel::MultiReg(2),
    LowerLevel::MultiReg(4),
];

fn machine_for(level: LowerLevel) -> PimMachine {
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    if let LowerLevel::MultiReg(n) = level {
        m.set_tmp_regs(n);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Single-machine backend: LPF, HPF and NMS (all five strip
    /// programs through `edge_detect`) match the scalar reference at
    /// every prefix of every level's pass pipeline.
    #[test]
    fn every_pass_prefix_matches_scalar_on_machine(
        seed in any::<u64>(),
        w in 12u32..48,
        h in 10u32..32,
    ) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        for level in LEVELS {
            let pipeline = pass_pipeline(level);
            for cut in 0..=pipeline.len() {
                let mut m = machine_for(level);
                let got = ir::edge_detect_with_passes(&mut m, &img, &cfg, level, &pipeline[..cut]);
                prop_assert_eq!(&got.lpf, &want.lpf, "lpf, level {} prefix {}", level, cut);
                prop_assert_eq!(&got.hpf, &want.hpf, "hpf, level {} prefix {}", level, cut);
                prop_assert_eq!(&got.mask, &want.mask, "nms, level {} prefix {}", level, cut);
            }
        }
    }

    /// Downsample matches the scalar reference at every prefix of
    /// every level's pass pipeline.
    #[test]
    fn downsample_matches_scalar_at_every_prefix(
        seed in any::<u64>(),
        w in 12u32..48,
        h in 10u32..32,
    ) {
        let img = random_image(seed, w & !1, h & !1);
        let want = scalar::downsample2x(&img);
        for level in LEVELS {
            let pipeline = pass_pipeline(level);
            for cut in 0..=pipeline.len() {
                let mut m = machine_for(level);
                let got = ir::downsample2x_with_passes(&mut m, &img, level, &pipeline[..cut]);
                prop_assert_eq!(&got, &want, "level {} prefix {}", level, cut);
            }
        }
    }

    /// Sharded-pool backend: the full pipeline at `Opt` matches the
    /// scalar reference at every prefix of the `Opt` pass pipeline,
    /// on 2..4 arrays.
    #[test]
    fn every_pass_prefix_matches_scalar_on_pool(
        seed in any::<u64>(),
        arrays in 2usize..5,
        h in 10u32..32,
    ) {
        let img = random_image(seed, 32, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let pipeline = pass_pipeline(LowerLevel::Opt);
        for cut in 0..=pipeline.len() {
            let mut pool = PimMachine::builder(ArrayConfig::qvga_banks(6)).build_pool(arrays);
            let got = pim_pool::edge_detect_with_passes(&mut pool, &img, &cfg, &pipeline[..cut]);
            prop_assert_eq!(&got.lpf, &want.lpf, "lpf, prefix {}", cut);
            prop_assert_eq!(&got.hpf, &want.hpf, "hpf, prefix {}", cut);
            prop_assert_eq!(&got.mask, &want.mask, "nms, prefix {}", cut);
        }
    }
}
