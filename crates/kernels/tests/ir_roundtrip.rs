//! IR round-trip property tests (satellite of the kernel-IR refactor).
//!
//! Every kernel is defined exactly once as a macro-op program in
//! `pimvo_kernels::ir`; this suite pins the whole lowering matrix
//! against the scalar reference on random images:
//!
//! * levels: `Naive`, `Opt`, `MultiReg(2)`, `MultiReg(4)`;
//! * backends: a single `PimMachine` and a sharded `PimArrayPool`;
//! * kernels: LPF, HPF, NMS, downsample and the full pipeline.
//!
//! All of them must be **bit-identical** — lowering is only allowed to
//! change cost, never values.

use pimvo_kernels::{ir, pim_pool, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine};
use proptest::prelude::*;

fn random_image(seed: u64, w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xD6E8FEB86659FD93);
        (v >> 56) as u8
    })
}

/// The three lowering levels exercised per case; `MultiReg` is sampled
/// at both a small and the standard register count.
const LEVELS: [LowerLevel; 4] = [
    LowerLevel::Naive,
    LowerLevel::Opt,
    LowerLevel::MultiReg(2),
    LowerLevel::MultiReg(4),
];

fn machine_for(level: LowerLevel) -> PimMachine {
    let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
    if let LowerLevel::MultiReg(n) = level {
        m.set_tmp_regs(n);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// LPF round-trips through every lowering level.
    #[test]
    fn lpf_roundtrips_at_every_level(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let img = random_image(seed, w, h);
        let want = scalar::lpf(&img);
        for level in LEVELS {
            let mut m = machine_for(level);
            let got = ir::lpf(&mut m, &img, level);
            prop_assert_eq!(&got, &want, "level {}", level);
        }
    }

    /// HPF round-trips through every lowering level.
    #[test]
    fn hpf_roundtrips_at_every_level(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let lpf_map = scalar::lpf(&random_image(seed, w, h));
        let want = scalar::hpf(&lpf_map);
        for level in LEVELS {
            let mut m = machine_for(level);
            let got = ir::hpf(&mut m, &lpf_map, level);
            prop_assert_eq!(&got, &want, "level {}", level);
        }
    }

    /// NMS round-trips through every lowering level, for arbitrary
    /// threshold pairs.
    #[test]
    fn nms_roundtrips_at_every_level(
        seed in any::<u64>(),
        th1 in 0u8..40,
        th2 in 0u8..80,
    ) {
        let hmap = scalar::hpf(&scalar::lpf(&random_image(seed, 48, 36)));
        let cfg = EdgeConfig::new(th1, th2);
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        for level in LEVELS {
            let mut m = machine_for(level);
            let got = ir::nms(&mut m, &hmap, &cfg, level);
            prop_assert_eq!(&got, &want, "level {}", level);
        }
    }

    /// Downsample round-trips through every lowering level.
    #[test]
    fn downsample_roundtrips_at_every_level(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let img = random_image(seed, w & !1, h & !1);
        let want = scalar::downsample2x(&img);
        for level in LEVELS {
            let mut m = machine_for(level);
            let got = ir::downsample2x(&mut m, &img, level);
            prop_assert_eq!(&got, &want, "level {}", level);
        }
    }

    /// The full pipeline round-trips through every lowering level
    /// (all three output maps), and the level cost ordering holds:
    /// naive is strictly the most expensive, multi-register never
    /// costs more cycles than opt.
    #[test]
    fn pipeline_roundtrips_and_costs_order(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let mut cycles = Vec::new();
        for level in LEVELS {
            let mut m = machine_for(level);
            let got = ir::edge_detect(&mut m, &img, &cfg, level);
            prop_assert_eq!(&got.lpf, &want.lpf, "level {}", level);
            prop_assert_eq!(&got.hpf, &want.hpf, "level {}", level);
            prop_assert_eq!(&got.mask, &want.mask, "level {}", level);
            cycles.push(m.stats().cycles);
        }
        // LEVELS = [Naive, Opt, MultiReg(2), MultiReg(4)]
        prop_assert!(cycles[0] > cycles[1], "naive {} vs opt {}", cycles[0], cycles[1]);
        prop_assert!(cycles[2] <= cycles[1], "multireg(2) {} vs opt {}", cycles[2], cycles[1]);
        prop_assert!(cycles[3] <= cycles[2], "multireg(4) {} vs multireg(2) {}", cycles[3], cycles[2]);
    }

    /// The pooled backend runs the same Opt-lowered programs sharded
    /// across arrays and still reproduces the scalar reference.
    #[test]
    fn pool_backend_roundtrips(seed in any::<u64>(), arrays in 1usize..5) {
        let img = random_image(seed, 48, 40);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let mut pool = PimMachine::builder(ArrayConfig::qvga_banks(6)).build_pool(arrays);
        let got = pim_pool::edge_detect(&mut pool, &img, &cfg);
        prop_assert_eq!(&got.lpf, &want.lpf, "arrays {}", arrays);
        prop_assert_eq!(&got.hpf, &want.hpf, "arrays {}", arrays);
        prop_assert_eq!(&got.mask, &want.mask, "arrays {}", arrays);
    }
}
