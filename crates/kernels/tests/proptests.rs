//! Property tests: every kernel implementation agrees on random
//! images, and the NMS simplification is exact.

use pimvo_kernels::{ir, scalar, EdgeConfig, GrayImage};
use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine};
use proptest::prelude::*;

fn random_image(seed: u64, w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let v = (x as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            .wrapping_add(seed)
            .wrapping_mul(0xD6E8FEB86659FD93);
        (v >> 56) as u8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The optimized PIM mapping reproduces the scalar reference on
    /// arbitrary images (all three maps).
    #[test]
    fn pim_opt_equals_scalar(seed in any::<u64>(), w in 12u32..72, h in 10u32..56) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let got = ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Opt);
        prop_assert_eq!(&got.lpf, &want.lpf);
        prop_assert_eq!(&got.hpf, &want.hpf);
        prop_assert_eq!(&got.mask, &want.mask);
    }

    /// The naive PIM mapping agrees too (same values, different cost).
    #[test]
    fn pim_naive_equals_scalar(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let got = ir::edge_detect(&mut m, &img, &cfg, LowerLevel::Naive);
        prop_assert_eq!(&got.mask, &want.mask);
        prop_assert_eq!(&got.hpf, &want.hpf);
    }

    /// The multi-register mapping agrees as well.
    #[test]
    fn pim_multireg_equals_scalar(seed in any::<u64>(), w in 12u32..64, h in 10u32..48) {
        let img = random_image(seed, w, h);
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        m.set_tmp_regs(ir::REGS_REQUIRED);
        let got =
            ir::edge_detect(&mut m, &img, &cfg, LowerLevel::MultiReg(ir::REGS_REQUIRED));
        prop_assert_eq!(&got.mask, &want.mask);
    }

    /// The branch-free NMS is algebraically identical to the original
    /// compound-branch form for every threshold pair.
    #[test]
    fn nms_simplification_exact(
        seed in any::<u64>(),
        th1 in 0u8..40,
        th2 in 0u8..80,
    ) {
        let hmap = random_image(seed, 40, 32);
        let cfg = EdgeConfig::new(th1, th2);
        prop_assert_eq!(
            scalar::nms(&hmap, &cfg),
            scalar::nms_branchy(&hmap, &cfg)
        );
    }

    /// Kernel outputs are translation-consistent: shifting the input
    /// by whole pixels shifts the LPF output identically (away from
    /// borders).
    #[test]
    fn lpf_is_shift_equivariant(seed in any::<u64>(), dx in 1u32..4) {
        let base = random_image(seed, 48, 36);
        let shifted = GrayImage::from_fn(48, 36, |x, y| {
            if x >= dx { base.get(x - dx, y) } else { 0 }
        });
        let a = scalar::lpf(&base);
        let b = scalar::lpf(&shifted);
        for y in 2..34 {
            for x in (dx + 2)..46 {
                prop_assert_eq!(a.get(x - dx, y), b.get(x, y), "({}, {})", x, y);
            }
        }
    }
}
