//! Shared helpers for mapping image kernels onto the PIM machine.

use crate::GrayImage;
use pimvo_pim::{LaneWidth, PimMachine, Signedness};

/// Row-region layout used by the edge-detection mappings.
///
/// The paper's single `(320*8) x 256` array holds exactly one 8-bit QVGA
/// image; intermediate maps either overwrite consumed rows or live in
/// additional banks. We model the banked variant (identical op counts
/// and access energies, simpler bookkeeping): each region is one 256-row
/// bank holding one full-height map.
#[derive(Debug, Clone, Copy)]
pub struct Regions {
    /// Input image rows.
    pub input: usize,
    /// First intermediate map (LPF pass 1 / scratch).
    pub aux1: usize,
    /// Second intermediate map (LPF output).
    pub aux2: usize,
    /// Third intermediate map (HPF output).
    pub aux3: usize,
    /// Output mask rows.
    pub out: usize,
    /// Scratch rows (per-row temporaries, threshold rows, zero row).
    pub scratch: usize,
}

impl Regions {
    /// Region size in rows (one bank).
    pub const BANK: usize = 256;

    /// Builds the standard 6-bank layout.
    ///
    /// # Panics
    ///
    /// Panics if the machine has fewer than `6 * 256` rows or the image
    /// is taller than one bank.
    pub fn for_machine(m: &PimMachine, img_height: u32) -> Regions {
        assert!(
            m.config().rows >= 6 * Self::BANK,
            "edge-detection mapping needs a 6-bank array \
             (ArrayConfig::qvga_banks(6)); machine has {} rows",
            m.config().rows
        );
        assert!(
            img_height as usize <= Self::BANK,
            "image height {img_height} exceeds the {}-row bank",
            Self::BANK
        );
        Regions {
            input: 0,
            aux1: Self::BANK,
            aux2: 2 * Self::BANK,
            aux3: 3 * Self::BANK,
            out: 4 * Self::BANK,
            scratch: 5 * Self::BANK,
        }
    }

    /// A dedicated always-zero row (image border padding).
    pub fn zero_row(&self) -> usize {
        self.scratch
    }

    /// Scratch row `i` (temporaries within one row's processing).
    pub fn s(&self, i: usize) -> usize {
        self.scratch + 1 + i
    }

    /// Threshold broadcast row `i`.
    pub fn th(&self, i: usize) -> usize {
        self.scratch + 16 + i
    }
}

/// Loads a grayscale image into consecutive rows starting at `base`,
/// one image row per word line (8-bit lanes). Returns the image width.
///
/// # Panics
///
/// Panics if the image is wider than the word line.
pub fn load_image(m: &mut PimMachine, base: usize, img: &GrayImage) -> usize {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let w = img.width() as usize;
    assert!(
        w <= m.lanes(),
        "image width {w} exceeds {} lanes",
        m.lanes()
    );
    for y in 0..img.height() {
        let lanes: Vec<i64> = img.row(y).iter().map(|&p| p as i64).collect();
        m.host_write_lanes(base + y as usize, &lanes)
            .expect("host I/O row in range");
    }
    w
}

/// Loads image rows `y0..y1` into rows `base + y0 .. base + y1` (same
/// global row addressing as [`load_image`], so a strip-loaded shard is
/// row-for-row identical to the full load). Returns the image width.
pub fn load_image_rows(
    m: &mut PimMachine,
    base: usize,
    img: &GrayImage,
    y0: u32,
    y1: u32,
) -> usize {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let w = img.width() as usize;
    assert!(
        w <= m.lanes(),
        "image width {w} exceeds {} lanes",
        m.lanes()
    );
    assert!(y1 <= img.height(), "strip {y0}..{y1} exceeds image height");
    for y in y0..y1 {
        let lanes: Vec<i64> = img.row(y).iter().map(|&p| p as i64).collect();
        m.host_write_lanes(base + y as usize, &lanes)
            .expect("host I/O row in range");
    }
    w
}

/// Loads image rows like [`load_image_rows`] but tagged as
/// [`pimvo_pim::TransferKind::PyramidPrefetch`]: on a machine with a
/// DMA channel the transfers ride the channel engine without gating
/// the inbound-strip wait, so they overlap whatever compute follows —
/// only a settle point ([`pimvo_pim::PimMachine::dma_settle`] or the
/// pool equivalent) waits for them. Without a channel this is
/// identical to a plain strip load. Returns the image width.
pub fn prefetch_image_rows(
    m: &mut PimMachine,
    base: usize,
    img: &GrayImage,
    y0: u32,
    y1: u32,
) -> usize {
    m.set_transfer_kind(pimvo_pim::TransferKind::PyramidPrefetch);
    let w = load_image_rows(m, base, img, y0, y1);
    m.set_transfer_kind(pimvo_pim::TransferKind::StripIn);
    w
}

/// Partitions `h` rows into `n` contiguous strips `[y0, y1)` of
/// near-equal height (the first `h % n` strips get one extra row).
/// Strips beyond the row count come out empty, so a pool larger than
/// the image degrades gracefully.
pub fn partition_rows(h: u32, n: usize) -> Vec<(i64, i64)> {
    assert!(n >= 1, "at least one strip");
    let (h, n) = (h as i64, n as i64);
    let (base, extra) = (h / n, h % n);
    let mut strips = Vec::with_capacity(n as usize);
    let mut y = 0;
    for i in 0..n {
        let len = base + i64::from(i < extra);
        strips.push((y, y + len));
        y += len;
    }
    strips
}

/// Reads a map back from consecutive rows starting at `base`.
pub fn read_image(m: &mut PimMachine, base: usize, width: u32, height: u32) -> GrayImage {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let mut img = GrayImage::new(width, height);
    for y in 0..height {
        let lanes = m.host_read_lanes(base + y as usize);
        for x in 0..width {
            img.set(x, y, lanes[x as usize] as u8);
        }
    }
    img
}

pub use crate::config::row_or_zero;

/// Sets up the ghost-lane mask for images narrower than the word line.
///
/// At the native QVGA width the image occupies every lane, and a
/// negative pixel shift simply drops data off the word-line edge. For
/// narrower images (tests, crops) the same shift would smear valid data
/// into lanes beyond the image width, breaking the zero-padding
/// invariant the kernels rely on. This broadcasts a `0xFF`-below-width /
/// `0`-beyond mask into a scratch row; returns `None` when the image is
/// full-width and no masking is needed.
pub fn ghost_mask(m: &mut PimMachine, regions: &Regions, width: usize) -> Option<usize> {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    if width >= m.lanes() {
        return None;
    }
    let row = regions.th(8);
    let vals: Vec<i64> = (0..m.lanes())
        .map(|i| if i < width { 0xFF } else { 0 })
        .collect();
    m.host_write_lanes(row, &vals)
        .expect("host I/O row in range");
    Some(row)
}

/// Applies the ghost-lane mask to the Tmp Reg if one is active (a
/// single AND cycle, only incurred for sub-width images).
pub fn apply_ghost_mask(m: &mut PimMachine, mask: Option<usize>) {
    if let Some(row) = mask {
        m.logic(
            pimvo_pim::LogicFunc::And,
            pimvo_pim::Operand::Tmp,
            pimvo_pim::Operand::Row(row),
        );
    }
}
