/// Thresholds of the edge-detection pipeline.
///
/// `th2` gates the absolute high-pass response; `th1` is the
/// non-maximum-suppression margin by which a pixel must exceed its
/// strongest opposing neighbour pair (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfig {
    /// NMS margin threshold.
    pub th1: u8,
    /// High-pass magnitude threshold.
    pub th2: u8,
    /// Border margin (pixels) cleared in the edge mask; kernels cannot
    /// produce valid responses where their neighbourhood leaves the
    /// image.
    pub border: u32,
}

impl EdgeConfig {
    /// Defaults tuned to yield the paper's 3000-6000 features on a QVGA
    /// frame with moderate texture.
    pub fn new(th1: u8, th2: u8) -> Self {
        EdgeConfig {
            th1,
            th2,
            border: 2,
        }
    }
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig::new(2, 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = EdgeConfig::default();
        assert!(c.th2 > c.th1);
        assert_eq!(c.border, 2);
    }
}
