//! Pipeline configuration: threshold constants, stencil shift
//! distances, and the border-padding row helper shared by every kernel
//! mapping (scalar reference, IR builders, and the deprecated
//! hand-scheduled variants).

use crate::pim_util::Regions;

/// Default NMS margin threshold (`th1` of Fig. 4).
pub const DEFAULT_TH1: u8 = 2;

/// Default high-pass magnitude threshold (`th2` of Fig. 4).
pub const DEFAULT_TH2: u8 = 10;

/// Default border margin (pixels) cleared in the edge mask.
pub const DEFAULT_BORDER: u32 = 2;

/// Lane shift aligning a 3x3 neighbourhood's opposing corner/edge
/// pixels (two pixels apart) onto the same lane: the `x-1`-anchored
/// operand alignment of the HPF and NMS stencils.
pub const NEIGHBOR_SHIFT: i32 = 2;

/// Lane shift re-centring an `x-1`-anchored whole-row result back onto
/// the output anchor `x`.
pub const RECENTER_SHIFT: i32 = -1;

/// Row operand for row `y` of a map at `base`, substituting the zero
/// row outside `0..height` (zero padding at the top/bottom borders).
pub fn row_or_zero(regions: &Regions, base: usize, y: i64, height: u32) -> usize {
    if y < 0 || y >= height as i64 {
        regions.zero_row()
    } else {
        base + y as usize
    }
}

/// Thresholds of the edge-detection pipeline.
///
/// `th2` gates the absolute high-pass response; `th1` is the
/// non-maximum-suppression margin by which a pixel must exceed its
/// strongest opposing neighbour pair (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfig {
    /// NMS margin threshold.
    pub th1: u8,
    /// High-pass magnitude threshold.
    pub th2: u8,
    /// Border margin (pixels) cleared in the edge mask; kernels cannot
    /// produce valid responses where their neighbourhood leaves the
    /// image.
    pub border: u32,
}

impl EdgeConfig {
    /// Defaults tuned to yield the paper's 3000-6000 features on a QVGA
    /// frame with moderate texture.
    pub fn new(th1: u8, th2: u8) -> Self {
        EdgeConfig {
            th1,
            th2,
            border: DEFAULT_BORDER,
        }
    }
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig::new(DEFAULT_TH1, DEFAULT_TH2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = EdgeConfig::default();
        assert!(c.th2 > c.th1);
        assert_eq!(c.border, DEFAULT_BORDER);
        assert_eq!((c.th1, c.th2), (DEFAULT_TH1, DEFAULT_TH2));
    }
}
