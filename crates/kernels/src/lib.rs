#![warn(missing_docs)]

//! Edge-detection kernels of the EBVO pipeline (§3.2 of the paper).
//!
//! Each kernel is defined **twice**: once as a plain-Rust reference
//! ([`scalar`], fixing the exact output semantics — zero padding
//! outside the image, truncating averages, saturating sums) and once
//! as a macro-op IR program ([`ir`]) lowered onto the PIM machine by
//! [`pimvo_pim::lower()`] at a chosen [`pimvo_pim::LowerLevel`]:
//!
//! * `Naive` — the paper's unoptimized mapping (stand-alone shifts,
//!   every intermediate written back to SRAM), the Fig. 9-b comparison
//!   point;
//! * `Opt` — the paper's optimized mapping (Figs. 2-4): fused pixel
//!   shifts, Tmp-Reg chaining and the simplified branch-free NMS;
//! * `MultiReg(n)` — the §5.4 scaling study: spills held in extra
//!   temporary registers instead of SRAM scratch rows.
//!
//! The historical hand-scheduled variants (`pim_naive`, `pim_opt`,
//! `pim_multireg`) are deprecated thin wrappers over [`ir`], compiled
//! only under the off-by-default `legacy-kernels` cargo feature;
//! [`pim_pool`] shards the same programs across a
//! [`pimvo_pim::PimArrayPool`]. All levels produce **bit-identical**
//! edge maps; they differ only in cycle and energy cost. Integration
//! and property tests enforce the equivalence.
//!
//! ```
//! use pimvo_kernels::{scalar, EdgeConfig, GrayImage};
//!
//! let img = GrayImage::from_fn(32, 24, |x, y| ((x * 8) ^ (y * 8)) as u8);
//! let maps = scalar::edge_detect(&img, &EdgeConfig::default());
//! assert_eq!(maps.mask.width(), 32);
//! ```

mod config;
mod image;
pub mod ir;
#[cfg(feature = "legacy-kernels")]
pub mod pim_multireg;
#[cfg(feature = "legacy-kernels")]
pub mod pim_naive;
#[cfg(feature = "legacy-kernels")]
pub mod pim_opt;
pub mod pim_pool;
pub mod pim_util;
pub mod scalar;

pub use config::{
    row_or_zero, EdgeConfig, DEFAULT_BORDER, DEFAULT_TH1, DEFAULT_TH2, NEIGHBOR_SHIFT,
    RECENTER_SHIFT,
};
pub use image::{DepthImage, GrayImage};

/// Output of the edge-detection pipeline: the intermediate low-pass and
/// high-pass maps plus the final binary edge mask (0 or 255).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMaps {
    /// Low-pass filtered image.
    pub lpf: GrayImage,
    /// High-pass (gradient-magnitude approximation) map.
    pub hpf: GrayImage,
    /// Binary edge mask: 255 where an edge pixel was detected.
    pub mask: GrayImage,
}

impl EdgeMaps {
    /// Number of detected edge pixels.
    pub fn edge_count(&self) -> usize {
        self.mask.pixels().iter().filter(|&&p| p != 0).count()
    }
}
