#![warn(missing_docs)]

//! Edge-detection kernels of the EBVO pipeline (§3.2 of the paper), in
//! three interchangeable implementations:
//!
//! * [`scalar`] — plain Rust reference implementations defining the
//!   exact output semantics (zero padding outside the image, truncating
//!   averages, saturating sums — matching what the PIM hardware
//!   produces);
//! * [`pim_opt`] — the paper's optimized PIM mappings (Figs. 2-4):
//!   whole-row operations with fused pixel shifts, Tmp-Reg chaining and
//!   the simplified branch-free NMS;
//! * [`pim_naive`] — straightforward PIM mappings without the data-reuse
//!   and scheduling optimizations, used as the comparison point of
//!   Fig. 9-b.
//!
//! All three produce **bit-identical** edge maps; they differ only in
//! cycle and energy cost on the PIM machine. Integration and property
//! tests enforce the equivalence.
//!
//! ```
//! use pimvo_kernels::{scalar, EdgeConfig, GrayImage};
//!
//! let img = GrayImage::from_fn(32, 24, |x, y| ((x * 8) ^ (y * 8)) as u8);
//! let maps = scalar::edge_detect(&img, &EdgeConfig::default());
//! assert_eq!(maps.mask.width(), 32);
//! ```

mod config;
mod image;
pub mod pim_multireg;
pub mod pim_naive;
pub mod pim_opt;
pub mod pim_pool;
pub mod pim_util;
pub mod scalar;

pub use config::EdgeConfig;
pub use image::{DepthImage, GrayImage};

/// Output of the edge-detection pipeline: the intermediate low-pass and
/// high-pass maps plus the final binary edge mask (0 or 255).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMaps {
    /// Low-pass filtered image.
    pub lpf: GrayImage,
    /// High-pass (gradient-magnitude approximation) map.
    pub hpf: GrayImage,
    /// Binary edge mask: 255 where an edge pixel was detected.
    pub mask: GrayImage,
}

impl EdgeMaps {
    /// Number of detected edge pixels.
    pub fn edge_count(&self) -> usize {
        self.mask.pixels().iter().filter(|&&p| p != 0).count()
    }
}
