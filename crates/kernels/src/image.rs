use std::fmt;

/// An 8-bit grayscale image in row-major order.
///
/// Out-of-bounds reads through [`GrayImage::get_zero`] return 0 — the
/// same zero-padding the PIM lane shifts produce at word-line borders —
/// so the scalar reference kernels and the PIM mappings share one
/// border semantics.
#[derive(Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a zero-filled image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            data: vec![0; (width * height) as usize],
        }
    }

    /// Builds an image from a per-pixel function `f(x, y)`.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> u8) -> Self {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[(y * width + x) as usize] = f(x, y);
            }
        }
        img
    }

    /// Builds an image from raw row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            (width * height) as usize,
            "pixel buffer does not match dimensions"
        );
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Pixel at signed coordinates, 0 outside the image (zero padding).
    #[inline]
    pub fn get_zero(&self, x: i64, y: i64) -> u8 {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            0
        } else {
            self.data[(y as u32 * self.width + x as u32) as usize]
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// All pixels, row-major.
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutable pixel access, row-major.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// One image row as a slice.
    #[inline]
    pub fn row(&self, y: u32) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        let w = self.width as usize;
        &self.data[y as usize * w..(y as usize + 1) * w]
    }

    /// Clears a `margin`-pixel border to zero (the valid-region policy
    /// shared by all kernel implementations).
    pub fn clear_border(&mut self, margin: u32) {
        let (w, h) = (self.width, self.height);
        for y in 0..h {
            for x in 0..w {
                if x < margin || y < margin || x >= w - margin || y >= h - margin {
                    self.data[(y * w + x) as usize] = 0;
                }
            }
        }
    }
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrayImage({}x{})", self.width, self.height)
    }
}

/// A depth image in meters, row-major `f32`. Depth `<= 0` or non-finite
/// marks an invalid measurement.
#[derive(Clone, PartialEq)]
pub struct DepthImage {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl DepthImage {
    /// Creates a depth image filled with invalid (0) depth.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        DepthImage {
            width,
            height,
            data: vec![0.0; (width * height) as usize],
        }
    }

    /// Builds a depth image from a per-pixel function.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> f32) -> Self {
        let mut img = DepthImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[(y * width + x) as usize] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Depth at `(x, y)` in meters.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Sets the depth at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// True when the pixel holds a usable depth.
    #[inline]
    pub fn is_valid(&self, x: u32, y: u32) -> bool {
        let d = self.get(x, y);
        d.is_finite() && d > 0.0
    }

    /// All depths, row-major.
    #[inline]
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for DepthImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DepthImage({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let img = GrayImage::from_fn(4, 3, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(3, 2), 23);
        assert_eq!(img.get_zero(-1, 0), 0);
        assert_eq!(img.get_zero(4, 0), 0);
        assert_eq!(img.get_zero(1, 1), 11);
    }

    #[test]
    fn clear_border_zeroes_margin() {
        let mut img = GrayImage::from_fn(6, 6, |_, _| 9);
        img.clear_border(2);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(1, 3), 0);
        assert_eq!(img.get(2, 2), 9);
        assert_eq!(img.get(3, 3), 9);
        assert_eq!(img.get(4, 4), 0);
    }

    #[test]
    fn row_slice() {
        let img = GrayImage::from_fn(3, 2, |x, y| (x + y * 3) as u8);
        assert_eq!(img.row(1), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        GrayImage::new(2, 2).get(2, 0);
    }

    #[test]
    fn depth_validity() {
        let mut d = DepthImage::new(2, 2);
        assert!(!d.is_valid(0, 0));
        d.set(0, 0, 1.5);
        assert!(d.is_valid(0, 0));
        d.set(1, 1, f32::NAN);
        assert!(!d.is_valid(1, 1));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_raw_validates_len() {
        GrayImage::from_raw(2, 2, vec![0; 3]);
    }
}
