//! Scalar reference implementations of the edge-detection kernels.
//!
//! These definitions are the *specification*: the PIM mappings in
//! [`crate::ir`] (at every lowering level) must reproduce them
//! bit-for-bit. They use zero padding outside the image (what a PIM lane
//! shift produces at word-line borders), truncating averages (the
//! hardware `avg` drops the LSB) and saturating 8-bit sums.

use crate::{EdgeConfig, EdgeMaps, GrayImage};
use pimvo_fixed::sat::{abs_diff_u8, avg_u8, max_u8, min_u8, sat_sub_u8};

/// Low-pass filter: the 3x3 binomial kernel `[1 2 1; 2 4 2; 1 2 1]/16`
/// decomposed into two 2x2 averaging passes (Fig. 2), with truncation
/// after every average exactly as the in-memory pipeline computes it.
pub fn lpf(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    // pass 1, anchored top-left: vertical then horizontal 2-average
    let mut p1 = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let c0 = avg_u8(
                img.get_zero(x as i64, y as i64),
                img.get_zero(x as i64, y as i64 + 1),
            );
            let c1 = avg_u8(
                img.get_zero(x as i64 + 1, y as i64),
                img.get_zero(x as i64 + 1, y as i64 + 1),
            );
            p1.set(x, y, avg_u8(c0, c1));
        }
    }
    // pass 2, anchored bottom-right: re-centres the composite 3x3 kernel
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let c0 = avg_u8(
                p1.get_zero(x as i64 - 1, y as i64 - 1),
                p1.get_zero(x as i64 - 1, y as i64),
            );
            let c1 = avg_u8(
                p1.get_zero(x as i64, y as i64 - 1),
                p1.get_zero(x as i64, y as i64),
            );
            out.set(x, y, avg_u8(c0, c1));
        }
    }
    out
}

/// High-pass filter: the absolute differences over the four opposing
/// neighbour pairs through the centre (Fig. 3) — the paper's low-cost
/// replacement for the Sobel gradient magnitude.
///
/// The four differences are combined with the averaging tree
/// `avg(avg(d_diag1, d_diag2), avg(d_vert, d_horiz))`, i.e. `SAD / 4`
/// with per-step truncation. This uses the same single-cycle `avg`
/// primitive as the plain saturated sum but cannot saturate: a response
/// plateau at 255 would make the non-maximum suppression discard the
/// strongest edges entirely (every neighbour ties at the clamp).
/// Thresholds are calibrated to the `/4` scale.
///
/// Column 0 is defined as zero: the row-parallel PIM mapping anchors the
/// aligned operands at `x - 1`, so the leftmost output pixel has no
/// anchor lane (the detector's border margin discards it regardless).
pub fn hpf(lpf_map: &GrayImage) -> GrayImage {
    let (w, h) = (lpf_map.width(), lpf_map.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 1..w {
            let (xi, yi) = (x as i64, y as i64);
            let d_diag1 = abs_diff_u8(
                lpf_map.get_zero(xi - 1, yi - 1),
                lpf_map.get_zero(xi + 1, yi + 1),
            );
            let d_diag2 = abs_diff_u8(
                lpf_map.get_zero(xi + 1, yi - 1),
                lpf_map.get_zero(xi - 1, yi + 1),
            );
            let d_vert = abs_diff_u8(lpf_map.get_zero(xi, yi - 1), lpf_map.get_zero(xi, yi + 1));
            let d_horiz = abs_diff_u8(lpf_map.get_zero(xi - 1, yi), lpf_map.get_zero(xi + 1, yi));
            let s = avg_u8(avg_u8(d_diag1, d_diag2), avg_u8(d_vert, d_horiz));
            out.set(x, y, s);
        }
    }
    out
}

/// Reference Sobel-based high-pass filter (the *original* kernel the
/// paper's SAD formulation replaces): two orthogonal 3x3 Sobel
/// convolutions and the saturated magnitude `|gx| + |gy|`.
///
/// Only used for qualitative comparison — the SAD kernel is expected to
/// produce a *similar* (not identical) response.
pub fn hpf_sobel(lpf_map: &GrayImage) -> GrayImage {
    let (w, h) = (lpf_map.width(), lpf_map.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as i64, y as i64);
            let p = |dx: i64, dy: i64| lpf_map.get_zero(xi + dx, yi + dy) as i32;
            let gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
            let gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
            let mag = (gx.abs() + gy.abs()).min(255) as u8;
            out.set(x, y, mag);
        }
    }
    out
}

/// Non-maximum suppression, simplified branch-free form (Fig. 4):
///
/// ```text
/// edge(x, y) <=> H > th2  AND  sat(H - th1) > min over the four
///                opposing neighbour pairs of max(pair)
/// ```
pub fn nms(hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let (w, h) = (hpf_map.width(), hpf_map.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as i64, y as i64);
            let b2 = hpf_map.get_zero(xi, yi);
            let m1 = max_u8(
                hpf_map.get_zero(xi - 1, yi - 1),
                hpf_map.get_zero(xi + 1, yi + 1),
            );
            let m2 = max_u8(hpf_map.get_zero(xi, yi - 1), hpf_map.get_zero(xi, yi + 1));
            let m3 = max_u8(
                hpf_map.get_zero(xi + 1, yi - 1),
                hpf_map.get_zero(xi - 1, yi + 1),
            );
            let m4 = max_u8(hpf_map.get_zero(xi - 1, yi), hpf_map.get_zero(xi + 1, yi));
            let k = min_u8(min_u8(m1, m2), min_u8(m3, m4));
            let l = sat_sub_u8(b2, cfg.th1);
            let edge = b2 > cfg.th2 && l > k;
            out.set(x, y, if edge { 255 } else { 0 });
        }
    }
    out
}

/// Non-maximum suppression in the *original* compound-branch form the
/// paper starts from (9 threshold comparisons and 8 branches). Exists to
/// prove the algebraic simplification: [`nms`] must produce identical
/// output (property-tested).
pub fn nms_branchy(hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let (w, h) = (hpf_map.width(), hpf_map.height());
    let mut out = GrayImage::new(w, h);
    let th1 = cfg.th1 as i32;
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as i64, y as i64);
            let p = |dx: i64, dy: i64| hpf_map.get_zero(xi + dx, yi + dy) as i32;
            let b2 = p(0, 0);
            let exceeds = |a: i32, b: i32| (b2 - a) > th1 && (b2 - b) > th1;
            let edge = b2 > cfg.th2 as i32
                && (exceeds(p(-1, -1), p(1, 1))
                    || exceeds(p(0, -1), p(0, 1))
                    || exceeds(p(1, -1), p(-1, 1))
                    || exceeds(p(-1, 0), p(1, 0)));
            out.set(x, y, if edge { 255 } else { 0 });
        }
    }
    out
}

/// Full edge-detection pipeline: LPF → HPF → NMS → border clearing.
pub fn edge_detect(img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    let lpf_map = lpf(img);
    let hpf_map = hpf(&lpf_map);
    let mut mask = nms(&hpf_map, cfg);
    mask.clear_border(cfg.border);
    EdgeMaps {
        lpf: lpf_map,
        hpf: hpf_map,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((x * 7 + y * 13) % 251) as u8)
    }

    #[test]
    fn lpf_smooths_constant_region() {
        let img = GrayImage::from_fn(16, 16, |_, _| 100);
        let out = lpf(&img);
        // interior stays 100 (away from the zero-padded border)
        for y in 2..14 {
            for x in 2..14 {
                assert_eq!(out.get(x, y), 100, "({x},{y})");
            }
        }
    }

    #[test]
    fn lpf_matches_binomial_convolution_up_to_truncation() {
        let img = ramp(24, 20);
        let out = lpf(&img);
        for y in 2..18i64 {
            for x in 2..22i64 {
                let mut sum = 0u32;
                let weights = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
                for dy in -1..=1i64 {
                    for dx in -1..=1i64 {
                        sum += weights[(dy + 1) as usize][(dx + 1) as usize]
                            * img.get_zero(x + dx, y + dy) as u32;
                    }
                }
                let exact = (sum / 16) as i32;
                let got = out.get(x as u32, y as u32) as i32;
                // three truncating averages lose at most 3 LSBs total
                assert!(
                    (got - exact).abs() <= 3,
                    "({x},{y}) got {got} want ~{exact}"
                );
            }
        }
    }

    #[test]
    fn hpf_zero_on_flat_high_on_step() {
        let img = GrayImage::from_fn(20, 20, |x, _| if x < 10 { 20 } else { 220 });
        let l = lpf(&img);
        let h = hpf(&l);
        // flat interior regions: zero response
        assert_eq!(h.get(4, 10), 0);
        assert_eq!(h.get(16, 10), 0);
        // step column: strong response
        assert!(h.get(10, 10) > 60);
    }

    #[test]
    fn hpf_tracks_sobel_qualitatively() {
        let img = ramp(32, 32);
        let l = lpf(&img);
        let sad = hpf(&l);
        let sobel = hpf_sobel(&l);
        // responses correlate: compare rank at strong-vs-flat pixels
        let mut agree = 0;
        let mut total = 0;
        for y in 2..30 {
            for x in 2..30 {
                let strong_sad = sad.get(x, y) > 15;
                let strong_sobel = sobel.get(x, y) > 120;
                total += 1;
                if strong_sad == strong_sobel {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.8, "{agree}/{total}");
    }

    #[test]
    fn nms_simplification_is_exact() {
        // the algebraic identity (x>y AND x>z) <=> x>max(y,z) etc.
        let cfg = EdgeConfig::default();
        for seed in 0..4u32 {
            let img = GrayImage::from_fn(24, 24, |x, y| {
                ((x * 31 + y * 17 + seed * 101).wrapping_mul(2654435761) >> 13) as u8
            });
            assert_eq!(nms(&img, &cfg), nms_branchy(&img, &cfg), "seed {seed}");
        }
    }

    #[test]
    fn nms_keeps_ridge_suppresses_neighbours() {
        // vertical ridge of high response at x == 8
        let h = GrayImage::from_fn(16, 16, |x, _| match x {
            7 => 60,
            8 => 200,
            9 => 60,
            _ => 0,
        });
        let cfg = EdgeConfig::new(4, 24);
        let m = nms(&h, &cfg);
        assert_eq!(m.get(8, 8), 255);
        assert_eq!(m.get(7, 8), 0);
        assert_eq!(m.get(9, 8), 0);
    }

    #[test]
    fn edge_detect_finds_box_outline() {
        // box with a 1-px anti-aliased boundary ring, as a real camera
        // would produce; a perfectly pixel-aligned step yields a
        // two-pixel response plateau that strict NMS suppresses
        let img = GrayImage::from_fn(40, 40, |x, y| {
            let inside = (11..29).contains(&x) && (11..29).contains(&y);
            let ring = !inside && (10..30).contains(&x) && (10..30).contains(&y);
            if inside {
                200
            } else if ring {
                115
            } else {
                30
            }
        });
        let maps = edge_detect(&img, &EdgeConfig::default());
        let n = maps.edge_count();
        // roughly the box perimeter (4 * 20 = 80), give or take corners
        assert!(n > 40 && n < 400, "edge count {n}");
        // border cleared
        assert_eq!(maps.mask.get(0, 0), 0);
    }
}

/// Downsamples by 2 with 2x2 block averaging (truncating, matching the
/// PIM `avg` primitive applied vertically then horizontally) — the
/// pyramid-construction kernel for coarse-to-fine tracking.
///
/// Odd trailing rows/columns are dropped.
pub fn downsample2x(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width() / 2, img.height() / 2);
    assert!(w > 0 && h > 0, "image too small to downsample");
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let v0 = avg_u8(img.get(2 * x, 2 * y), img.get(2 * x, 2 * y + 1));
            let v1 = avg_u8(img.get(2 * x + 1, 2 * y), img.get(2 * x + 1, 2 * y + 1));
            out.set(x, y, avg_u8(v0, v1));
        }
    }
    out
}
