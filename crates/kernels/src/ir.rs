//! The edge-detection kernels as macro-op IR programs — **one**
//! definition per kernel, replacing the hand-scheduled variants
//! (`pim_naive`, `pim_opt`, `pim_multireg` — deprecated thin wrappers
//! available only under the `legacy-kernels` feature — and
//! [`crate::pim_pool`], a thin sharding layer over this module).
//!
//! Each `*_program` builder emits the kernel's dataflow over virtual
//! registers for a strip of output rows; [`pimvo_pim::lower()`] then
//! schedules it at a chosen [`LowerLevel`]:
//!
//! * [`LowerLevel::Naive`] reproduces the paper's unoptimized mapping
//!   (stand-alone shifts, every intermediate written back to SRAM) —
//!   the Fig. 9-b comparison point;
//! * [`LowerLevel::Opt`] reproduces the paper's optimized mapping
//!   (fused shifts, Tmp-Reg chaining, minimal scratch spills);
//! * [`LowerLevel::MultiReg`] is the §5.4 scaling study: spills go to
//!   extra temporary registers instead of SRAM scratch rows.
//!
//! All levels produce output bit-identical to [`crate::scalar`]; only
//! the cycle/energy cost differs. Property tests in
//! `crates/kernels/tests/ir_roundtrip.rs` enforce this on random
//! images for every level and both backends (single machine, sharded
//! pool).

use crate::config::{NEIGHBOR_SHIFT, RECENTER_SHIFT};
use crate::pim_util::{ghost_mask, load_image, read_image, row_or_zero, Regions};
use crate::{EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{
    lower_with_passes, LaneWidth, LowerLevel, LoweredCache, LoweredProgram, Pass, PimMachine,
    PimProgram, ScratchRows, Signedness, Val,
};
use std::sync::Arc;

/// Scratch rows the lowering may spill into: `r.s(0) .. r.s(14)`.
/// Fifteen rows comfortably hold the worst-case live set of the naive
/// NMS expansion.
pub const SCRATCH_POOL: usize = 15;

/// Temporary registers the §5.4 multi-register lowering
/// ([`LowerLevel::MultiReg`]) uses — enable them with
/// [`PimMachine::set_tmp_regs`] before running a program lowered at
/// that level.
pub const REGS_REQUIRED: u8 = 4;

/// The scratch pool handed to [`pimvo_pim::lower()`] for every kernel
/// program.
pub fn scratch_pool(r: &Regions) -> ScratchRows {
    ScratchRows::new((0..SCRATCH_POOL).map(|i| r.s(i)).collect())
}

/// Asserts the machine satisfies `level`'s register requirement.
///
/// # Panics
///
/// Panics when `level` is [`LowerLevel::MultiReg`]`(n)` and the machine
/// has fewer than `n` Tmp registers (enable them with
/// [`PimMachine::set_tmp_regs`]).
pub fn check_level(m: &PimMachine, level: LowerLevel) {
    if let LowerLevel::MultiReg(n) = level {
        assert!(
            m.tmp_reg_count() >= n,
            "multi-register lowering needs {} Tmp registers, machine has {} \
             (call set_tmp_regs)",
            n,
            m.tmp_reg_count()
        );
    }
}

/// Lowers `prog` at `level` and runs it, panicking on malformed
/// programs (the builders below are hazard-free by construction).
/// Lowering memoizes through [`LoweredCache::global`], so repeated
/// frames re-lower nothing.
fn run(m: &mut PimMachine, prog: &PimProgram, level: LowerLevel, r: &Regions) {
    let lowered = LoweredCache::global()
        .get_or_lower(prog, level, &scratch_pool(r), m.config())
        .unwrap_or_else(|e| panic!("lowering {} at {level}: {e}", prog.name()));
    m.run_program(&lowered)
        .unwrap_or_else(|e| panic!("running {} at {level}: {e:?}", prog.name()));
}

/// Like [`run`], but lowering with an explicit pass list instead of
/// the level's full pipeline. Bypasses the cache: its key does not
/// cover the pass list, and partial lowerings must never be served to
/// regular callers.
fn run_with_passes(
    m: &mut PimMachine,
    prog: &PimProgram,
    level: LowerLevel,
    r: &Regions,
    passes: &[Pass],
) {
    let lowered = lower_with_passes(prog, level, &scratch_pool(r), passes)
        .unwrap_or_else(|e| panic!("lowering {} at {level}: {e}", prog.name()));
    m.run_program(&lowered)
        .unwrap_or_else(|e| panic!("running {} at {level}: {e:?}", prog.name()));
}

/// Dispatches to [`run`] (full pipeline, cached) or
/// [`run_with_passes`] (explicit pass list, uncached).
fn run_maybe(
    m: &mut PimMachine,
    prog: &PimProgram,
    level: LowerLevel,
    r: &Regions,
    passes: Option<&[Pass]>,
) {
    match passes {
        Some(ps) => run_with_passes(m, prog, level, r, ps),
        None => run(m, prog, level, r),
    }
}

/// Lowers `prog` at [`LowerLevel::Opt`] for pool submission, memoized
/// through `cache`.
pub(crate) fn lower_opt(
    prog: &PimProgram,
    r: &Regions,
    cache: &LoweredCache,
    config: &pimvo_pim::ArrayConfig,
) -> Arc<LoweredProgram> {
    cache
        .get_or_lower(prog, LowerLevel::Opt, &scratch_pool(r), config)
        .unwrap_or_else(|e| panic!("lowering {}: {e}", prog.name()))
}

// ---------------------------------------------------------------------
// Program builders (one per kernel)
// ---------------------------------------------------------------------

/// LPF pass 1 (Fig. 2, anchored top-left) for output rows `y0..y1`:
/// `aux1[y] = avg(avg(src[y], src[y+1]) , << 1 pix)`. A shard needs one
/// halo input row below its strip.
pub fn lpf_pass1_program(r: &Regions, src: usize, h: u32, y0: i64, y1: i64) -> PimProgram {
    let mut p = PimProgram::new("lpf_pass1");
    p.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = Val::Row(row_or_zero(r, src, y, h));
        let b = Val::Row(row_or_zero(r, src, y + 1, h));
        let c = p.avg(a, b); // C = (A + B) / 2
        let e = p.avg_sh(c.into(), c.into(), 1); // E = (C + C<<1pix) / 2
        p.store(e, r.aux1 + y as usize);
    }
    p
}

/// LPF pass 2 (anchored bottom-right) for output rows `y0..y1`, reading
/// `aux1` rows `y - 1` and `y` — a shard needs one halo pass-1 row
/// above its strip.
pub fn lpf_pass2_program(
    r: &Regions,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) -> PimProgram {
    let mut p = PimProgram::new("lpf_pass2");
    p.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = Val::Row(row_or_zero(r, r.aux1, y - 1, h));
        let b = Val::Row(row_or_zero(r, r.aux1, y, h));
        let c = p.avg(a, b);
        let mut e = p.avg_sh(c.into(), c.into(), RECENTER_SHIFT);
        if let Some(mk) = mask {
            e = p.and(e.into(), Val::Row(mk));
        }
        p.store(e, dst + y as usize);
    }
    p
}

/// HPF (Fig. 3): saturated SAD over the four opposing neighbour pairs,
/// for output rows `y0..y1`. Row `y` reads `src` rows `y - 1 ..= y + 1`
/// — a shard needs one halo row on each side.
#[allow(clippy::too_many_arguments)]
pub fn hpf_program(
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) -> PimProgram {
    let mut p = PimProgram::new("hpf");
    p.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = Val::Row(row_or_zero(r, src, y - 1, h)); // row above
        let b = Val::Row(row_or_zero(r, src, y, h)); // centre row
        let c = Val::Row(row_or_zero(r, src, y + 1, h)); // row below

        // anchored at x-1 (lane i corresponds to output pixel x = i+1)
        let d2 = p.abs_diff_sh(c, a, NEIGHBOR_SHIFT); // |c1 - a3|
        let dv = p.abs_diff(a, c); // |a2 - c2| (anchored at x)
        let dh = p.abs_diff_sh(b, b, NEIGHBOR_SHIFT); // |b1 - b3|
        let d1 = p.abs_diff_sh(a, c, NEIGHBOR_SHIFT); // |a1 - c3|
        let e1 = p.avg(d1.into(), d2.into()); // avg of the two diagonals
        let e2 = p.avg_sh(dh.into(), dv.into(), 1); // avg(horiz, vert re-anchored)
        let e3 = p.avg(e2.into(), e1.into()); // final SAD/4 response
        let mut out = p.shift_pix(e3.into(), RECENTER_SHIFT); // re-centre
        if let Some(mk) = mask {
            out = p.and(out.into(), Val::Row(mk));
        }
        p.store(out, dst + y as usize);
    }
    p
}

/// NMS (Fig. 4, simplified branch-free form): `edge = (b2 > th2) &&
/// (sat(b2 - th1) > min(4 directional maxima))`, for output rows
/// `y0..y1`. Threshold rows `r.th(0)` / `r.th(1)` must be broadcast by
/// the host beforehand. A shard needs one halo row on each side.
#[allow(clippy::too_many_arguments)]
pub fn nms_program(
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) -> PimProgram {
    let mut p = PimProgram::new("nms");
    p.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let th1 = Val::Row(r.th(0));
    let th2 = Val::Row(r.th(1));
    for y in y0..y1 {
        let a = Val::Row(row_or_zero(r, src, y - 1, h));
        let b = Val::Row(row_or_zero(r, src, y, h));
        let c = Val::Row(row_or_zero(r, src, y + 1, h));

        // directional maxima, anchored at x-1 except the vertical pair
        let g = p.max_sh(a, c, NEIGHBOR_SHIFT); // G = max(a1, c3)
        let hh = p.max(a, c); // H = max(a2, c2), anchored at x
        let i = p.max_sh(c, a, NEIGHBOR_SHIFT); // I = max(c1, a3)
        let j = p.max_sh(b, b, NEIGHBOR_SHIFT); // J = max(b1, b3)
        let k1 = p.min(j.into(), g.into()); // K = min(J, G)
        let k2 = p.min_sh(k1.into(), hh.into(), 1); // ... min with H re-anchored
        let k3 = p.min(k2.into(), i.into()); // ... min with I
        let mut k = p.shift_pix(k3.into(), RECENTER_SHIFT); // re-centre K
        if let Some(mk) = mask {
            k = p.and(k.into(), Val::Row(mk));
        }
        let l = p.sat_sub(b, th1); // L = sat(B - th1)
        let mm = p.cmp_gt(l.into(), k.into()); // M = L > K
        let n = p.cmp_gt(b, th2); // N = B > th2
        let e = p.and(n.into(), mm.into()); // edge = M && N
        p.store(e, dst + y as usize);
    }
    p
}

/// Downsample-by-2 compute for output rows `oy0..oy1`: one vertical
/// pair average and one fused shift-average per output row, leaving the
/// 2x2 block means at even lanes of `aux1 + oy` (the decimating repack
/// is a host-side read).
pub fn downsample_program(r: &Regions, oy0: u32, oy1: u32) -> PimProgram {
    let mut p = PimProgram::new("downsample");
    p.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for oy in oy0..oy1 {
        let r0 = r.input + (2 * oy) as usize;
        let c = p.avg(Val::Row(r0), Val::Row(r0 + 1)); // vertical pair average
        let e = p.avg_sh(c.into(), c.into(), 1); // horizontal fused average
        p.store(e, r.aux1 + oy as usize);
    }
    p
}

// ---------------------------------------------------------------------
// Level-parameterized executors (single machine)
// ---------------------------------------------------------------------

/// Runs the full pipeline (LPF → HPF → NMS) at the given lowering
/// level.
///
/// # Panics
///
/// Panics if the machine has fewer than 6 banks of 256 rows, or fewer
/// Tmp registers than a [`LowerLevel::MultiReg`] level requires.
pub fn edge_detect(
    m: &mut PimMachine,
    img: &GrayImage,
    cfg: &EdgeConfig,
    level: LowerLevel,
) -> EdgeMaps {
    check_level(m, level);
    let r = Regions::for_machine(m, img.height());
    let w = load_image(m, r.input, img) as u32;
    let h = img.height();

    lpf_rows(m, &r, r.input, r.aux2, h, w as usize, level, None);
    let lpf = read_image(m, r.aux2, w, h);

    hpf_rows(m, &r, r.aux2, r.aux3, h, w as usize, level, None);
    let hpf = read_image(m, r.aux3, w, h);

    nms_rows(m, &r, r.aux3, r.out, h, w as usize, cfg, level, None);
    let mut mask = read_image(m, r.out, w, h);
    mask.clear_border(cfg.border);

    EdgeMaps { lpf, hpf, mask }
}

/// [`edge_detect`] with an explicit pass list in place of `level`'s
/// full [`pimvo_pim::pass_pipeline`]. Every prefix of the pipeline is
/// value-preserving — only cost may change — which
/// `crates/kernels/tests/pass_prefix_proptests.rs` pins against
/// [`crate::scalar`] on random images.
pub fn edge_detect_with_passes(
    m: &mut PimMachine,
    img: &GrayImage,
    cfg: &EdgeConfig,
    level: LowerLevel,
    passes: &[Pass],
) -> EdgeMaps {
    check_level(m, level);
    let r = Regions::for_machine(m, img.height());
    let w = load_image(m, r.input, img) as u32;
    let h = img.height();

    lpf_rows(m, &r, r.input, r.aux2, h, w as usize, level, Some(passes));
    let lpf = read_image(m, r.aux2, w, h);

    hpf_rows(m, &r, r.aux2, r.aux3, h, w as usize, level, Some(passes));
    let hpf = read_image(m, r.aux3, w, h);

    nms_rows(
        m,
        &r,
        r.aux3,
        r.out,
        h,
        w as usize,
        cfg,
        level,
        Some(passes),
    );
    let mut mask = read_image(m, r.out, w, h);
    mask.clear_border(cfg.border);

    EdgeMaps { lpf, hpf, mask }
}

/// Runs only the LPF at the given lowering level.
pub fn lpf(m: &mut PimMachine, img: &GrayImage, level: LowerLevel) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, img.height());
    let w = load_image(m, r.input, img) as u32;
    lpf_rows(
        m,
        &r,
        r.input,
        r.aux2,
        img.height(),
        w as usize,
        level,
        None,
    );
    read_image(m, r.aux2, w, img.height())
}

/// [`lpf`] with an explicit pass list in place of `level`'s full
/// pipeline (see [`edge_detect_with_passes`]).
pub fn lpf_with_passes(
    m: &mut PimMachine,
    img: &GrayImage,
    level: LowerLevel,
    passes: &[Pass],
) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, img.height());
    let w = load_image(m, r.input, img) as u32;
    lpf_rows(
        m,
        &r,
        r.input,
        r.aux2,
        img.height(),
        w as usize,
        level,
        Some(passes),
    );
    read_image(m, r.aux2, w, img.height())
}

/// Runs only the HPF on a low-pass map at the given lowering level.
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage, level: LowerLevel) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, lpf_map.height());
    let w = load_image(m, r.aux2, lpf_map) as u32;
    hpf_rows(
        m,
        &r,
        r.aux2,
        r.aux3,
        lpf_map.height(),
        w as usize,
        level,
        None,
    );
    read_image(m, r.aux3, w, lpf_map.height())
}

/// [`hpf`] with an explicit pass list in place of `level`'s full
/// pipeline (see [`edge_detect_with_passes`]).
pub fn hpf_with_passes(
    m: &mut PimMachine,
    lpf_map: &GrayImage,
    level: LowerLevel,
    passes: &[Pass],
) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, lpf_map.height());
    let w = load_image(m, r.aux2, lpf_map) as u32;
    hpf_rows(
        m,
        &r,
        r.aux2,
        r.aux3,
        lpf_map.height(),
        w as usize,
        level,
        Some(passes),
    );
    read_image(m, r.aux3, w, lpf_map.height())
}

/// Runs only the NMS on a high-pass map at the given lowering level.
pub fn nms(
    m: &mut PimMachine,
    hpf_map: &GrayImage,
    cfg: &EdgeConfig,
    level: LowerLevel,
) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, hpf_map.height());
    let w = load_image(m, r.aux3, hpf_map) as u32;
    nms_rows(
        m,
        &r,
        r.aux3,
        r.out,
        hpf_map.height(),
        w as usize,
        cfg,
        level,
        None,
    );
    let mut mask = read_image(m, r.out, w, hpf_map.height());
    mask.clear_border(cfg.border);
    mask
}

/// [`nms`] with an explicit pass list in place of `level`'s full
/// pipeline (see [`edge_detect_with_passes`]).
pub fn nms_with_passes(
    m: &mut PimMachine,
    hpf_map: &GrayImage,
    cfg: &EdgeConfig,
    level: LowerLevel,
    passes: &[Pass],
) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, hpf_map.height());
    let w = load_image(m, r.aux3, hpf_map) as u32;
    nms_rows(
        m,
        &r,
        r.aux3,
        r.out,
        hpf_map.height(),
        w as usize,
        cfg,
        level,
        Some(passes),
    );
    let mut mask = read_image(m, r.out, w, hpf_map.height());
    mask.clear_border(cfg.border);
    mask
}

/// Downsamples by 2 at the given lowering level; the lane decimation is
/// a host-side repack. Output is bit-identical to
/// [`crate::scalar::downsample2x`].
pub fn downsample2x(m: &mut PimMachine, img: &GrayImage, level: LowerLevel) -> GrayImage {
    downsample2x_impl(m, img, level, None)
}

/// [`downsample2x`] with an explicit pass list in place of `level`'s
/// full pipeline (see [`edge_detect_with_passes`]).
pub fn downsample2x_with_passes(
    m: &mut PimMachine,
    img: &GrayImage,
    level: LowerLevel,
    passes: &[Pass],
) -> GrayImage {
    downsample2x_impl(m, img, level, Some(passes))
}

fn downsample2x_impl(
    m: &mut PimMachine,
    img: &GrayImage,
    level: LowerLevel,
    passes: Option<&[Pass]>,
) -> GrayImage {
    check_level(m, level);
    let r = Regions::for_machine(m, img.height());
    let _ = load_image(m, r.input, img);
    let (w, h) = (img.width() / 2, img.height() / 2);
    assert!(w > 0 && h > 0, "image too small to downsample");
    let prog = downsample_program(&r, 0, h);
    run_maybe(m, &prog, level, &r, passes);
    let mut out = GrayImage::new(w, h);
    for oy in 0..h {
        let lanes = m.host_read_lanes(r.aux1 + oy as usize);
        for ox in 0..w {
            out.set(ox, oy, lanes[(2 * ox) as usize] as u8);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn lpf_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    level: LowerLevel,
    passes: Option<&[Pass]>,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    let p1 = lpf_pass1_program(r, src, h, 0, h as i64);
    run_maybe(m, &p1, level, r, passes);
    let p2 = lpf_pass2_program(r, dst, h, mask, 0, h as i64);
    run_maybe(m, &p2, level, r, passes);
}

#[allow(clippy::too_many_arguments)]
fn hpf_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    level: LowerLevel,
    passes: Option<&[Pass]>,
) {
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    let p = hpf_program(r, src, dst, h, mask, 0, h as i64);
    run_maybe(m, &p, level, r, passes);
}

#[allow(clippy::too_many_arguments)]
fn nms_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    cfg: &EdgeConfig,
    level: LowerLevel,
    passes: Option<&[Pass]>,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(0), cfg.th1 as i64)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(1), cfg.th2 as i64)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    let p = nms_program(r, src, dst, h, mask, 0, h as i64);
    run_maybe(m, &p, level, r, passes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga_banks(6))
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 23 + y * 37).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    fn levels() -> [LowerLevel; 3] {
        [LowerLevel::Naive, LowerLevel::Opt, LowerLevel::MultiReg(4)]
    }

    fn machine_for(level: LowerLevel) -> PimMachine {
        let mut m = machine();
        if let LowerLevel::MultiReg(n) = level {
            m.set_tmp_regs(n);
        }
        m
    }

    #[test]
    fn every_level_matches_scalar() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let want = scalar::edge_detect(&img, &cfg);
        for level in levels() {
            let mut m = machine_for(level);
            let got = edge_detect(&mut m, &img, &cfg, level);
            assert_eq!(got.lpf, want.lpf, "{level} lpf");
            assert_eq!(got.hpf, want.hpf, "{level} hpf");
            assert_eq!(got.mask, want.mask, "{level} mask");
        }
    }

    #[test]
    fn level_cost_ordering_holds() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut cycles = Vec::new();
        let mut writes = Vec::new();
        for level in levels() {
            let mut m = machine_for(level);
            let _ = edge_detect(&mut m, &img, &cfg, level);
            cycles.push(m.stats().cycles);
            writes.push(m.stats().sram_writes);
        }
        assert!(
            cycles[0] > cycles[1],
            "naive {} should exceed opt {}",
            cycles[0],
            cycles[1]
        );
        assert!(
            cycles[2] <= cycles[1],
            "multireg {} should not exceed opt {}",
            cycles[2],
            cycles[1]
        );
        assert!(
            writes[2] < writes[1] / 2,
            "multireg writes {} vs opt {}",
            writes[2],
            writes[1]
        );
    }

    #[test]
    fn downsample_matches_scalar_at_every_level() {
        let img = test_image();
        let want = scalar::downsample2x(&img);
        for level in levels() {
            let mut m = machine_for(level);
            assert_eq!(downsample2x(&mut m, &img, level), want, "{level}");
        }
    }

    #[test]
    fn program_listing_is_stable() {
        let mut m = machine();
        let r = Regions::for_machine(&m, 4);
        let _ = &mut m;
        let p = lpf_pass1_program(&r, r.input, 4, 0, 1);
        let text = p.to_string();
        assert!(text.starts_with("program lpf_pass1:\n"), "{text}");
        assert!(text.contains("avg"), "{text}");
        assert!(text.contains("store"), "{text}");
    }

    #[test]
    #[should_panic(expected = "Tmp registers")]
    fn multireg_level_rejects_single_register_machine() {
        let mut m = machine();
        let _ = hpf(&mut m, &test_image(), LowerLevel::MultiReg(4));
    }
}
