//! Optimized PIM mappings of the edge-detection kernels — the paper's
//! contribution in §3.2 (Figs. 2, 3, 4).
//!
//! Deprecated thin wrappers: the kernels are defined once as macro-op
//! IR programs in [`crate::ir`], and the paper's optimizations — fused
//! pixel shifts, Tmp-Reg chaining, minimal scratch spills — are now
//! produced mechanically by the [`LowerLevel::Opt`] lowering pass.
//! Every function produces output bit-identical to the
//! [`crate::scalar`] reference.

use crate::{ir, EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LowerLevel, PimMachine};

/// Runs the full optimized pipeline (LPF → HPF → NMS) on the machine and
/// returns the resulting maps.
///
/// # Panics
///
/// Panics if the machine has fewer than 6 banks of 256 rows (use
/// [`pimvo_pim::ArrayConfig::qvga_banks`]).
#[deprecated(note = "use ir::edge_detect with LowerLevel::Opt")]
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    ir::edge_detect(m, img, cfg, LowerLevel::Opt)
}

/// Runs only the optimized LPF mapping; returns the low-pass map.
#[deprecated(note = "use ir::lpf with LowerLevel::Opt")]
pub fn lpf(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    ir::lpf(m, img, LowerLevel::Opt)
}

/// Runs only the optimized HPF mapping on a low-pass map.
#[deprecated(note = "use ir::hpf with LowerLevel::Opt")]
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    ir::hpf(m, lpf_map, LowerLevel::Opt)
}

/// Runs only the optimized NMS mapping on a high-pass map.
#[deprecated(note = "use ir::nms with LowerLevel::Opt")]
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    ir::nms(m, hpf_map, cfg, LowerLevel::Opt)
}

/// Downsamples by 2 on the PIM; the lane decimation is a host-side
/// repack. Output is bit-identical to [`crate::scalar::downsample2x`].
#[deprecated(note = "use ir::downsample2x with LowerLevel::Opt")]
pub fn downsample2x(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    ir::downsample2x(m, img, LowerLevel::Opt)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga_banks(6))
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            let v = (x * 13).wrapping_mul(y * 7 + 3) % 256;
            if (20..40).contains(&x) && (15..35).contains(&y) {
                (v / 2 + 120) as u8
            } else {
                (v / 3) as u8
            }
        })
    }

    #[test]
    fn lpf_matches_scalar_exactly() {
        let img = test_image();
        let mut m = machine();
        assert_eq!(lpf(&mut m, &img), scalar::lpf(&img));
    }

    #[test]
    fn hpf_matches_scalar_exactly() {
        let img = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &img), scalar::hpf(&img));
    }

    #[test]
    fn nms_matches_scalar_exactly() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn full_pipeline_matches_scalar() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m = machine();
        let got = edge_detect(&mut m, &img, &cfg);
        let want = scalar::edge_detect(&img, &cfg);
        assert_eq!(got.lpf, want.lpf);
        assert_eq!(got.hpf, want.hpf);
        assert_eq!(got.mask, want.mask);
    }

    #[test]
    fn cycle_counts_scale_with_rows() {
        let img = GrayImage::from_fn(64, 16, |x, y| (x * y) as u8);
        let mut m = machine();
        let c0 = m.stats().cycles;
        let _ = lpf(&mut m, &img);
        let per16 = m.stats().cycles - c0;

        let img32 = GrayImage::from_fn(64, 32, |x, y| (x * y) as u8);
        let mut m2 = machine();
        let _ = lpf(&mut m2, &img32);
        let per32 = m2.stats().cycles;
        assert!(
            per32 > per16 && per32 <= 2 * per16 + 8,
            "{per16} vs {per32}"
        );
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod downsample_tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    #[test]
    fn pim_downsample_matches_scalar() {
        let img = GrayImage::from_fn(64, 48, |x, y| {
            ((x * 29 + y * 17).wrapping_mul(2654435761) >> 13) as u8
        });
        let want = scalar::downsample2x(&img);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let got = downsample2x(&mut m, &img);
        assert_eq!(got, want);
    }

    #[test]
    fn downsample_halves_dimensions_and_averages() {
        let img = GrayImage::from_fn(8, 8, |x, y| ((x / 2) * 40 + (y / 2) * 10) as u8);
        let out = scalar::downsample2x(&img);
        assert_eq!(out.width(), 4);
        assert_eq!(out.height(), 4);
        // uniform 2x2 blocks average to themselves
        assert_eq!(out.get(1, 1), 50);
        assert_eq!(out.get(3, 2), 140);
    }
}
