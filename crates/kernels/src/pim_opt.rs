//! Optimized PIM mappings of the edge-detection kernels — the paper's
//! contribution in §3.2 (Figs. 2, 3, 4).
//!
//! The optimizations over [`crate::pim_naive`]:
//!
//! * **fused pixel shifts** — the shifter sits in the accumulator
//!   datapath, so `avg(C, C << 1pix)` is a single cycle instead of a
//!   stand-alone shift plus a write-back plus an average;
//! * **Tmp-Reg chaining** — multi-stage expressions keep intermediate
//!   results in the temporary register, paying SRAM write-backs only for
//!   values consumed by a *later* row's processing;
//! * **algebraic simplification** — the NMS branch compound is replaced
//!   by the branch-free `sat / min / max` form (Fig. 4), and the Sobel
//!   gradient magnitude by the 4-direction saturated SAD (Fig. 3).
//!
//! Every function produces output bit-identical to the [`crate::scalar`]
//! reference.

use crate::pim_util::{apply_ghost_mask, ghost_mask, load_image, read_image, row_or_zero, Regions};
use crate::{EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LaneWidth, LogicFunc, Operand, PimMachine, Signedness};

use Operand::{Row, Tmp};

/// Runs the full optimized pipeline (LPF → HPF → NMS) on the machine and
/// returns the resulting maps.
///
/// # Panics
///
/// Panics if the machine has fewer than 6 banks of 256 rows (use
/// [`pimvo_pim::ArrayConfig::qvga_banks`]).
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    let regions = Regions::for_machine(m, img.height());
    let w = load_image(m, regions.input, img) as u32;
    let h = img.height();

    lpf_rows(m, &regions, regions.input, regions.aux2, h, w as usize);
    let lpf = read_image(m, regions.aux2, w, h);

    hpf_rows(m, &regions, regions.aux2, regions.aux3, h, w as usize);
    let hpf = read_image(m, regions.aux3, w, h);

    nms_rows(m, &regions, regions.aux3, regions.out, h, w as usize, cfg);
    let mut mask = read_image(m, regions.out, w, h);
    mask.clear_border(cfg.border);

    EdgeMaps { lpf, hpf, mask }
}

/// Runs only the optimized LPF mapping; returns the low-pass map.
pub fn lpf(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    let regions = Regions::for_machine(m, img.height());
    let w = load_image(m, regions.input, img) as u32;
    lpf_rows(
        m,
        &regions,
        regions.input,
        regions.aux2,
        img.height(),
        w as usize,
    );
    read_image(m, regions.aux2, w, img.height())
}

/// Runs only the optimized HPF mapping on a low-pass map.
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    let regions = Regions::for_machine(m, lpf_map.height());
    let w = load_image(m, regions.aux2, lpf_map) as u32;
    hpf_rows(
        m,
        &regions,
        regions.aux2,
        regions.aux3,
        lpf_map.height(),
        w as usize,
    );
    read_image(m, regions.aux3, w, lpf_map.height())
}

/// Runs only the optimized NMS mapping on a high-pass map.
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let regions = Regions::for_machine(m, hpf_map.height());
    let w = load_image(m, regions.aux3, hpf_map) as u32;
    nms_rows(
        m,
        &regions,
        regions.aux3,
        regions.out,
        hpf_map.height(),
        w as usize,
        cfg,
    );
    let mut mask = read_image(m, regions.out, w, hpf_map.height());
    mask.clear_border(cfg.border);
    mask
}

/// Downsamples by 2 on the PIM: per output row one vertical average
/// (dual-row read) and one fused shift-average produce the 2x2 block
/// means at even lanes; the lane decimation is a host-side repack, as
/// in the pooling layers of the CNN extension. Output is bit-identical
/// to [`crate::scalar::downsample2x`].
pub fn downsample2x(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    let regions = Regions::for_machine(m, img.height());
    let _ = load_image(m, regions.input, img);
    let (w, h) = (img.width() / 2, img.height() / 2);
    assert!(w > 0 && h > 0, "image too small to downsample");
    let rows = downsample_strip(m, &regions, 0, h);
    let mut out = GrayImage::new(w, h);
    for (oy, lanes) in rows.iter().enumerate() {
        for ox in 0..w {
            out.set(ox, oy as u32, lanes[(2 * ox) as usize] as u8);
        }
    }
    out
}

/// Downsample compute for output rows `oy0..oy1`: 3 cycles per output
/// row, returning each produced row's lane values (host-read, for the
/// decimating repack). Shard-safe: only touches input rows
/// `2*oy0..2*oy1` and scratch rows `aux1 + oy0..oy1`.
pub(crate) fn downsample_strip(
    m: &mut PimMachine,
    r: &Regions,
    oy0: u32,
    oy1: u32,
) -> Vec<Vec<i64>> {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    let mut rows = Vec::with_capacity((oy1 - oy0) as usize);
    for oy in oy0..oy1 {
        let r0 = r.input + (2 * oy) as usize;
        m.avg(Row(r0), Row(r0 + 1)); // vertical pair average
        m.avg_sh(Tmp, Tmp, 1); // horizontal fused average (even lanes)
        m.writeback(r.aux1 + oy as usize);
        rows.push(m.host_read_lanes(r.aux1 + oy as usize));
    }
    rows
}

/// LPF (Fig. 2): the 3x3 binomial decomposed into two 2x2 averaging
/// passes. Per row and pass: one vertical average (dual-row read), one
/// fused shift-average on the Tmp Reg, one write-back — 3 cycles.
fn lpf_rows(m: &mut PimMachine, r: &Regions, src: usize, dst: usize, h: u32, w: usize) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    lpf_pass1_strip(m, r, src, h, 0, h as i64);
    lpf_pass2_strip(m, r, dst, h, mask, 0, h as i64);
}

/// LPF pass 1 (anchored top-left) for output rows `y0..y1`, into
/// `aux1`. Row `y` reads `src` rows `y` and `y + 1` — a shard therefore
/// needs one halo input row below its strip.
pub(crate) fn lpf_pass1_strip(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    h: u32,
    y0: i64,
    y1: i64,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = row_or_zero(r, src, y, h);
        let b = row_or_zero(r, src, y + 1, h);
        m.avg(Row(a), Row(b)); // C = (A + B) / 2
        m.avg_sh(Tmp, Tmp, 1); // E = (C + C<<1pix) / 2
        m.writeback(r.aux1 + y as usize);
    }
}

/// LPF pass 2 (anchored bottom-right) for output rows `y0..y1`, reading
/// `aux1` rows `y - 1` and `y` — a shard needs one halo pass-1 row
/// above its strip (exchanged between pool arrays by the host).
pub(crate) fn lpf_pass2_strip(
    m: &mut PimMachine,
    r: &Regions,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = row_or_zero(r, r.aux1, y - 1, h);
        let b = row_or_zero(r, r.aux1, y, h);
        m.avg(Row(a), Row(b));
        m.avg_sh(Tmp, Tmp, -1);
        apply_ghost_mask(m, mask);
        m.writeback(dst + y as usize);
    }
}

/// HPF (Fig. 3): saturated SAD over the four opposing neighbour pairs.
/// Operand alignment by whole-row 2-pixel shifts, fused into the
/// absolute-difference and saturating-add steps; only the three
/// direction maps consumed out of order are written to scratch.
fn hpf_rows(m: &mut PimMachine, r: &Regions, src: usize, dst: usize, h: u32, w: usize) {
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    hpf_strip(m, r, src, dst, h, mask, 0, h as i64);
}

/// HPF compute for output rows `y0..y1`. Row `y` reads `src` rows
/// `y - 1 .. y + 1` — a shard needs one halo row on each side.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hpf_strip(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = row_or_zero(r, src, y - 1, h); // row above
        let b = row_or_zero(r, src, y, h); // centre row
        let c = row_or_zero(r, src, y + 1, h); // row below

        // anchored at x-1 (lane i corresponds to output pixel x = i+1)
        m.abs_diff_sh(Row(c), Row(a), 2); // |c1 - a3|
        m.writeback(r.s(0));
        m.abs_diff(Row(a), Row(c)); // |a2 - c2| (anchored at x)
        m.writeback(r.s(1));
        m.abs_diff_sh(Row(b), Row(b), 2); // |b1 - b3|
        m.writeback(r.s(2));

        m.abs_diff_sh(Row(a), Row(c), 2); // |a1 - c3|, stays in Tmp
        m.avg(Tmp, Row(r.s(0))); // avg of the two diagonals
        m.writeback(r.s(3));
        m.avg_sh(Row(r.s(2)), Row(r.s(1)), 1); // avg(horiz, vert re-anchored)
        m.avg(Tmp, Row(r.s(3))); // final SAD/4 response
        m.shift_pix(Tmp, -1); // re-centre to output anchor
        apply_ghost_mask(m, mask);
        m.writeback(dst + y as usize);
    }
}

/// NMS (Fig. 4): the simplified branch-free kernel
/// `edge = (b2 > th2) && (sat(b2 - th1) > min(4 directional maxima))`.
fn nms_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    cfg: &EdgeConfig,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(0), cfg.th1 as i64)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(1), cfg.th2 as i64)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    nms_strip(m, r, src, dst, h, mask, 0, h as i64);
}

/// NMS compute for output rows `y0..y1` (threshold rows must already be
/// hosted). Row `y` reads `src` rows `y - 1 .. y + 1` — a shard needs
/// one halo row on each side.
#[allow(clippy::too_many_arguments)]
pub(crate) fn nms_strip(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    mask: Option<usize>,
    y0: i64,
    y1: i64,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    for y in y0..y1 {
        let a = row_or_zero(r, src, y - 1, h);
        let b = row_or_zero(r, src, y, h);
        let c = row_or_zero(r, src, y + 1, h);

        // directional maxima, anchored at x-1 except the vertical pair
        m.max_sh(Row(a), Row(c), 2); // G = max(a1, c3)
        m.writeback(r.s(0));
        m.max(Row(a), Row(c)); // H = max(a2, c2), anchored at x
        m.writeback(r.s(1));
        m.max_sh(Row(c), Row(a), 2); // I = max(c1, a3)
        m.writeback(r.s(2));

        m.max_sh(Row(b), Row(b), 2); // J = max(b1, b3), in Tmp
        m.min(Tmp, Row(r.s(0))); // K = min(J, G)
        m.min_sh(Tmp, Row(r.s(1)), 1); // ... min with H re-anchored
        m.min(Tmp, Row(r.s(2))); // ... min with I
        m.shift_pix(Tmp, -1); // re-centre K to the output anchor
        apply_ghost_mask(m, mask);
        m.writeback(r.s(3));

        m.sat_sub(Row(b), Row(r.th(0))); // L = sat(B - th1)
        m.cmp_gt(Tmp, Row(r.s(3))); // M = L > K
        m.writeback(r.s(4));
        m.cmp_gt(Row(b), Row(r.th(1))); // N = B > th2
        m.logic(LogicFunc::And, Tmp, Row(r.s(4))); // edge = M && N
        m.writeback(dst + y as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga_banks(6))
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            let v = (x * 13).wrapping_mul(y * 7 + 3) % 256;
            if (20..40).contains(&x) && (15..35).contains(&y) {
                (v / 2 + 120) as u8
            } else {
                (v / 3) as u8
            }
        })
    }

    #[test]
    fn lpf_matches_scalar_exactly() {
        let img = test_image();
        let mut m = machine();
        assert_eq!(lpf(&mut m, &img), scalar::lpf(&img));
    }

    #[test]
    fn hpf_matches_scalar_exactly() {
        let img = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &img), scalar::hpf(&img));
    }

    #[test]
    fn nms_matches_scalar_exactly() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn full_pipeline_matches_scalar() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m = machine();
        let got = edge_detect(&mut m, &img, &cfg);
        let want = scalar::edge_detect(&img, &cfg);
        assert_eq!(got.lpf, want.lpf);
        assert_eq!(got.hpf, want.hpf);
        assert_eq!(got.mask, want.mask);
    }

    #[test]
    fn cycle_counts_scale_with_rows() {
        let img = GrayImage::from_fn(64, 16, |x, y| (x * y) as u8);
        let mut m = machine();
        let c0 = m.stats().cycles;
        let _ = lpf(&mut m, &img);
        let per16 = m.stats().cycles - c0;

        let img32 = GrayImage::from_fn(64, 32, |x, y| (x * y) as u8);
        let mut m2 = machine();
        let _ = lpf(&mut m2, &img32);
        let per32 = m2.stats().cycles;
        assert!(
            per32 > per16 && per32 <= 2 * per16 + 8,
            "{per16} vs {per32}"
        );
    }
}

#[cfg(test)]
mod downsample_tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    #[test]
    fn pim_downsample_matches_scalar() {
        let img = GrayImage::from_fn(64, 48, |x, y| {
            ((x * 29 + y * 17).wrapping_mul(2654435761) >> 13) as u8
        });
        let want = scalar::downsample2x(&img);
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let got = downsample2x(&mut m, &img);
        assert_eq!(got, want);
    }

    #[test]
    fn downsample_halves_dimensions_and_averages() {
        let img = GrayImage::from_fn(8, 8, |x, y| ((x / 2) * 40 + (y / 2) * 10) as u8);
        let out = scalar::downsample2x(&img);
        assert_eq!(out.width(), 4);
        assert_eq!(out.height(), 4);
        // uniform 2x2 blocks average to themselves
        assert_eq!(out.get(1, 1), 50);
        assert_eq!(out.get(3, 2), 140);
    }
}
