//! Sharded edge-detection kernels on a [`PimArrayPool`]: each array
//! runs the [`crate::ir`] kernel programs — lowered at
//! [`pimvo_pim::LowerLevel::Opt`] — for a contiguous strip of image
//! rows, submitted through
//! [`PimArrayPool::submit_strips`] (the job-queue strip entry point,
//! one pinned job per array).
//!
//! # Sharding model
//!
//! Rows keep their **global** indices inside every array (an image row
//! `y` lives at `region_base + y` on whichever array owns it), so a
//! shard executes exactly the instruction sequence the single-array
//! kernel would for those rows. Neighbour data crosses strip borders in
//! two host-mediated ways:
//!
//! * **input halos** — rows adjacent to a strip are host-loaded along
//!   with the strip itself (host I/O, no compute cycles);
//! * **boundary exchanges** — when a phase consumes the *previous*
//!   phase's output (LPF pass 2 after pass 1, HPF after LPF, NMS after
//!   HPF), the host copies each strip-edge row from the array that
//!   computed it into the neighbour that reads it, between the two
//!   program-submission barriers.
//!
//! Both mechanisms touch only `host_io_rows`; the merged compute
//! statistics (cycles, SRAM traffic, op histogram) are **bit-identical**
//! to single-array execution, as are the produced maps — property tests
//! in `crates/kernels/tests/` enforce this. Wall cycles shrink by the
//! strip factor, paying one [`pimvo_pim::CostModel::pool_sync_cycles`]
//! per barrier.

use crate::ir::{
    downsample_program, hpf_program, lower_opt, lpf_pass1_program, lpf_pass2_program, nms_program,
    scratch_pool,
};
use crate::pim_util::{ghost_mask, load_image_rows, partition_rows, prefetch_image_rows, Regions};
use crate::{EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{
    lower_with_passes, LaneWidth, LowerLevel, LoweredProgram, Pass, PimArrayPool, Signedness,
};
use std::sync::Arc;

/// Lowers one strip program per pool array with a builder closure,
/// memoized through the pool's [`pimvo_pim::LoweredCache`] — across
/// frames (and across sessions sharing the cache handle) each distinct
/// strip program is lowered exactly once.
fn strip_programs<F>(
    pool: &PimArrayPool,
    strips: &[(i64, i64)],
    r: &Regions,
    mut build: F,
) -> Vec<Arc<LoweredProgram>>
where
    F: FnMut(i64, i64) -> pimvo_pim::PimProgram,
{
    let cache = pool.lowered_cache().clone();
    let config = pool.array(0).config().clone();
    strips
        .iter()
        .map(|&(y0, y1)| lower_opt(&build(y0, y1), r, &cache, &config))
        .collect()
}

/// [`strip_programs`] with an explicit pass list. Uncached: the cache
/// key does not cover the pass list, and a partial lowering must never
/// be served to regular callers.
fn strip_programs_with_passes<F>(
    strips: &[(i64, i64)],
    r: &Regions,
    passes: &[Pass],
    mut build: F,
) -> Vec<Arc<LoweredProgram>>
where
    F: FnMut(i64, i64) -> pimvo_pim::PimProgram,
{
    strips
        .iter()
        .map(|&(y0, y1)| {
            let prog = build(y0, y1);
            let lowered = lower_with_passes(&prog, LowerLevel::Opt, &scratch_pool(r), passes)
                .unwrap_or_else(|e| panic!("lowering {}: {e}", prog.name()));
            Arc::new(lowered)
        })
        .collect()
}

/// Runs the full optimized pipeline (LPF → HPF → NMS) sharded across
/// the pool's arrays; output is bit-identical to single-array
/// [`crate::ir::edge_detect`] at [`pimvo_pim::LowerLevel::Opt`].
///
/// # Panics
///
/// Panics if the pool's arrays have fewer than 6 banks of 256 rows.
pub fn edge_detect(pool: &mut PimArrayPool, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    edge_detect_frame(pool, img, cfg, false, None, None)
}

/// [`edge_detect`] with an explicit pass list in place of the full
/// [`pimvo_pim::LowerLevel::Opt`] pipeline. Every prefix of the
/// pipeline is value-preserving — only cost may change — which
/// `crates/kernels/tests/pass_prefix_proptests.rs` pins against
/// [`crate::scalar`] on both backends.
pub fn edge_detect_with_passes(
    pool: &mut PimArrayPool,
    img: &GrayImage,
    cfg: &EdgeConfig,
    passes: &[Pass],
) -> EdgeMaps {
    edge_detect_frame(pool, img, cfg, false, None, Some(passes))
}

/// Runs [`edge_detect`] over a sequence of equal-sized frames with the
/// next frame's input strips prefetched on the arrays' DMA channels:
/// the input bank is dead once LPF pass 1 has consumed it, so frame
/// `f + 1`'s strips stream in place while frame `f`'s remaining phases
/// (LPF pass 2, HPF, NMS) compute, and the frame-boundary
/// [`PimArrayPool::dma_settle`] only waits for whatever the compute
/// did not already hide. Outputs are bit-identical to calling
/// [`edge_detect`] once per frame; on a pool without DMA channels the
/// schedule degenerates to the synchronous one.
///
/// # Panics
///
/// Panics if the frames differ in size or the arrays have fewer than
/// 6 banks of 256 rows.
pub fn edge_detect_pipelined(
    pool: &mut PimArrayPool,
    frames: &[GrayImage],
    cfg: &EdgeConfig,
) -> Vec<EdgeMaps> {
    assert!(
        frames
            .windows(2)
            .all(|p| p[0].width() == p[1].width() && p[0].height() == p[1].height()),
        "pipelined frames must share one size"
    );
    let mut out = Vec::with_capacity(frames.len());
    for (f, img) in frames.iter().enumerate() {
        if f > 0 {
            // the prefetch issued during the previous frame must have
            // landed before LPF pass 1 reads the input bank
            pool.dma_settle();
        }
        out.push(edge_detect_frame(
            pool,
            img,
            cfg,
            f > 0,
            frames.get(f + 1),
            None,
        ));
    }
    pool.dma_settle();
    out
}

/// One edge-detection frame. With `preloaded` the input strips are
/// already resident (a prior frame prefetched them); with `next` the
/// following frame's strips are prefetched right after LPF pass 1
/// frees the input bank.
fn edge_detect_frame(
    pool: &mut PimArrayPool,
    img: &GrayImage,
    cfg: &EdgeConfig,
    preloaded: bool,
    next: Option<&GrayImage>,
    passes: Option<&[Pass]>,
) -> EdgeMaps {
    let r = Regions::for_machine(pool.array(0), img.height());
    let h = img.height();
    let w = img.width() as usize;
    let strips = partition_rows(h, pool.len());
    let lower_strips = |pool: &PimArrayPool,
                        build: &mut dyn FnMut(i64, i64) -> pimvo_pim::PimProgram|
     -> Vec<Arc<LoweredProgram>> {
        match passes {
            Some(ps) => strip_programs_with_passes(&strips, &r, ps, build),
            None => strip_programs(pool, &strips, &r, build),
        }
    };

    // host setup per array: padding/threshold rows, ghost mask, input
    // strip + one halo row below (LPF pass 1 reads y and y + 1)
    let mut mask = None;
    for (i, &(y0, y1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        m.host_broadcast(r.zero_row(), 0)
            .expect("host I/O row in range");
        m.host_broadcast(r.th(0), cfg.th1 as i64)
            .expect("host I/O row in range");
        m.host_broadcast(r.th(1), cfg.th2 as i64)
            .expect("host I/O row in range");
        mask = ghost_mask(m, &r, w);
        let lo = y0 as u32;
        let hi = (y1 as u32 + 1).min(h);
        if !preloaded && lo < hi {
            load_image_rows(m, r.input, img, lo, hi);
        }
    }

    let p1 = lower_strips(pool, &mut |y0, y1| {
        lpf_pass1_program(&r, r.input, h, y0, y1)
    });
    pool.submit_strips_shared("lpf_pass1", &p1)
        .expect("lpf pass 1 programs run");
    if let Some(nf) = next {
        // input bank is dead from here on: stream the next frame's
        // strips behind the remaining three phases
        for (i, &(y0, y1)) in strips.iter().enumerate() {
            let lo = y0 as u32;
            let hi = (y1 as u32 + 1).min(h);
            if lo < hi {
                prefetch_image_rows(pool.array_mut(i), r.input, nf, lo, hi);
            }
        }
    }
    exchange_boundary_rows(pool, &strips, r.aux1, h, true, false);
    let p2 = lower_strips(pool, &mut |y0, y1| {
        lpf_pass2_program(&r, r.aux2, h, mask, y0, y1)
    });
    pool.submit_strips_shared("lpf_pass2", &p2)
        .expect("lpf pass 2 programs run");
    let lpf = collect_image(pool, &strips, r.aux2, img.width(), h);

    exchange_boundary_rows(pool, &strips, r.aux2, h, true, true);
    let ph = lower_strips(pool, &mut |y0, y1| {
        hpf_program(&r, r.aux2, r.aux3, h, mask, y0, y1)
    });
    pool.submit_strips_shared("hpf", &ph)
        .expect("hpf programs run");
    let hpf = collect_image(pool, &strips, r.aux3, img.width(), h);

    exchange_boundary_rows(pool, &strips, r.aux3, h, true, true);
    let pn = lower_strips(pool, &mut |y0, y1| {
        nms_program(&r, r.aux3, r.out, h, mask, y0, y1)
    });
    pool.submit_strips_shared("nms", &pn)
        .expect("nms programs run");
    let mut mask_img = collect_image(pool, &strips, r.out, img.width(), h);
    mask_img.clear_border(cfg.border);

    EdgeMaps {
        lpf,
        hpf,
        mask: mask_img,
    }
}

/// Sharded LPF; bit-identical to single-array [`crate::ir::lpf`] at
/// [`pimvo_pim::LowerLevel::Opt`].
pub fn lpf(pool: &mut PimArrayPool, img: &GrayImage) -> GrayImage {
    let r = Regions::for_machine(pool.array(0), img.height());
    let h = img.height();
    let w = img.width() as usize;
    let strips = partition_rows(h, pool.len());
    let mut mask = None;
    for (i, &(y0, y1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        m.host_broadcast(r.zero_row(), 0)
            .expect("host I/O row in range");
        mask = ghost_mask(m, &r, w);
        let lo = y0 as u32;
        let hi = (y1 as u32 + 1).min(h);
        if lo < hi {
            load_image_rows(m, r.input, img, lo, hi);
        }
    }
    let p1 = strip_programs(pool, &strips, &r, |y0, y1| {
        lpf_pass1_program(&r, r.input, h, y0, y1)
    });
    pool.submit_strips_shared("lpf_pass1", &p1)
        .expect("lpf pass 1 programs run");
    exchange_boundary_rows(pool, &strips, r.aux1, h, true, false);
    let p2 = strip_programs(pool, &strips, &r, |y0, y1| {
        lpf_pass2_program(&r, r.aux2, h, mask, y0, y1)
    });
    pool.submit_strips_shared("lpf_pass2", &p2)
        .expect("lpf pass 2 programs run");
    collect_image(pool, &strips, r.aux2, img.width(), h)
}

/// Sharded HPF on a low-pass map; bit-identical to single-array
/// [`crate::ir::hpf`] at [`pimvo_pim::LowerLevel::Opt`].
pub fn hpf(pool: &mut PimArrayPool, lpf_map: &GrayImage) -> GrayImage {
    let r = Regions::for_machine(pool.array(0), lpf_map.height());
    let h = lpf_map.height();
    let w = lpf_map.width() as usize;
    let strips = partition_rows(h, pool.len());
    let mut mask = None;
    for (i, &(y0, y1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        m.host_broadcast(r.zero_row(), 0)
            .expect("host I/O row in range");
        mask = ghost_mask(m, &r, w);
        // strip plus one halo row on each side (3-row stencil)
        if y0 < y1 {
            let lo = (y0 - 1).max(0) as u32;
            let hi = (y1 as u32 + 1).min(h);
            load_image_rows(m, r.aux2, lpf_map, lo, hi);
        }
    }
    let ph = strip_programs(pool, &strips, &r, |y0, y1| {
        hpf_program(&r, r.aux2, r.aux3, h, mask, y0, y1)
    });
    pool.submit_strips_shared("hpf", &ph)
        .expect("hpf programs run");
    collect_image(pool, &strips, r.aux3, lpf_map.width(), h)
}

/// Sharded NMS on a high-pass map; bit-identical to single-array
/// [`crate::ir::nms`] at [`pimvo_pim::LowerLevel::Opt`].
pub fn nms(pool: &mut PimArrayPool, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let r = Regions::for_machine(pool.array(0), hpf_map.height());
    let h = hpf_map.height();
    let w = hpf_map.width() as usize;
    let strips = partition_rows(h, pool.len());
    let mut mask = None;
    for (i, &(y0, y1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        m.host_broadcast(r.zero_row(), 0)
            .expect("host I/O row in range");
        m.host_broadcast(r.th(0), cfg.th1 as i64)
            .expect("host I/O row in range");
        m.host_broadcast(r.th(1), cfg.th2 as i64)
            .expect("host I/O row in range");
        mask = ghost_mask(m, &r, w);
        if y0 < y1 {
            let lo = (y0 - 1).max(0) as u32;
            let hi = (y1 as u32 + 1).min(h);
            load_image_rows(m, r.aux3, hpf_map, lo, hi);
        }
    }
    let pn = strip_programs(pool, &strips, &r, |y0, y1| {
        nms_program(&r, r.aux3, r.out, h, mask, y0, y1)
    });
    pool.submit_strips_shared("nms", &pn)
        .expect("nms programs run");
    let mut out = collect_image(pool, &strips, r.out, hpf_map.width(), h);
    out.clear_border(cfg.border);
    out
}

/// Sharded downsample-by-2; bit-identical to single-array
/// [`crate::ir::downsample2x`]. Output rows partition trivially — each
/// output row reads its own input row pair, so no halos or exchanges
/// are needed.
pub fn downsample2x(pool: &mut PimArrayPool, img: &GrayImage) -> GrayImage {
    let r = Regions::for_machine(pool.array(0), img.height());
    let (w, h) = (img.width() / 2, img.height() / 2);
    assert!(w > 0 && h > 0, "image too small to downsample");
    let strips = partition_rows(h, pool.len());
    for (i, &(oy0, oy1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        let lo = 2 * oy0 as u32;
        let hi = (2 * oy1 as u32).min(img.height());
        if lo < hi {
            load_image_rows(m, r.input, img, lo, hi);
        }
    }
    let pd = strip_programs(pool, &strips, &r, |oy0, oy1| {
        downsample_program(&r, oy0 as u32, oy1 as u32)
    });
    pool.submit_strips_shared("downsample", &pd)
        .expect("downsample programs run");
    let mut out = GrayImage::new(w, h);
    for (i, &(oy0, oy1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        for oy in oy0..oy1 {
            let lanes = m.host_read_lanes(r.aux1 + oy as usize);
            for ox in 0..w {
                out.set(ox, oy as u32, lanes[(2 * ox) as usize] as u8);
            }
        }
    }
    out
}

/// Copies strip-edge rows of the map at `base` between neighbouring
/// arrays: with `above`, each array receives row `y0 - 1` from its
/// predecessor; with `below`, row `y1` from its successor. Pure host
/// I/O — the transferred rows were computed exactly once, so compute
/// statistics stay conserved.
fn exchange_boundary_rows(
    pool: &mut PimArrayPool,
    strips: &[(i64, i64)],
    base: usize,
    h: u32,
    above: bool,
    below: bool,
) {
    for i in 0..strips.len() {
        let (y0, y1) = strips[i];
        if y0 >= y1 {
            continue; // empty strip
        }
        let mut wanted: Vec<i64> = Vec::new();
        if above && y0 > 0 {
            wanted.push(y0 - 1);
        }
        if below && (y1 as u32) < h {
            wanted.push(y1);
        }
        for y in wanted {
            // find the array whose strip produced row y
            let owner = strips
                .iter()
                .position(|&(a, b)| y >= a && y < b)
                .expect("boundary row inside some strip");
            if owner == i {
                continue;
            }
            let row = base + y as usize;
            let src = pool.array_mut(owner);
            src.set_lanes(LaneWidth::W8, Signedness::Unsigned);
            let lanes = src.host_read_lanes(row);
            pool.array_mut(i)
                .host_write_lanes(row, &lanes)
                .expect("host I/O row in range");
        }
    }
}

/// Assembles the output map by host-reading each strip from the array
/// that computed it.
fn collect_image(
    pool: &mut PimArrayPool,
    strips: &[(i64, i64)],
    base: usize,
    width: u32,
    h: u32,
) -> GrayImage {
    let mut out = GrayImage::new(width, h);
    for (i, &(y0, y1)) in strips.iter().enumerate() {
        let m = pool.array_mut(i);
        m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
        for y in y0..y1 {
            let lanes = m.host_read_lanes(base + y as usize);
            for x in 0..width {
                out.set(x, y as u32, lanes[x as usize] as u8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir;
    use pimvo_pim::{ArrayConfig, LowerLevel, PimMachine, PimMachineBuilder};

    fn pool(n: usize) -> PimArrayPool {
        PimMachineBuilder::new(ArrayConfig::qvga_banks(6)).build_pool(n)
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 31 + y * 17).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    #[test]
    fn pooled_edge_detect_matches_single_array() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut single = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::edge_detect(&mut single, &img, &cfg, LowerLevel::Opt);
        for n in [1, 2, 3, 4, 8] {
            let mut p = pool(n);
            let got = edge_detect(&mut p, &img, &cfg);
            assert_eq!(got.lpf, want.lpf, "lpf mismatch at n={n}");
            assert_eq!(got.hpf, want.hpf, "hpf mismatch at n={n}");
            assert_eq!(got.mask, want.mask, "mask mismatch at n={n}");
        }
    }

    #[test]
    fn pooled_edge_detect_conserves_compute_ops() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut single = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = ir::edge_detect(&mut single, &img, &cfg, LowerLevel::Opt);
        let want = single.stats().clone();
        for n in [2, 4] {
            let mut p = pool(n);
            let _ = edge_detect(&mut p, &img, &cfg);
            let got = p.merged_stats();
            assert_eq!(got.cycles, want.cycles, "cycles at n={n}");
            assert_eq!(got.acc_ops, want.acc_ops, "acc_ops at n={n}");
            assert_eq!(got.sram_reads, want.sram_reads, "reads at n={n}");
            assert_eq!(got.sram_writes, want.sram_writes, "writes at n={n}");
            assert_eq!(got.op_histogram, want.op_histogram, "histogram at n={n}");
        }
    }

    #[test]
    fn pooled_wall_cycles_shrink_monotonically() {
        let img = GrayImage::from_fn(64, 48, |x, y| (x * 3 + y * 5) as u8);
        let cfg = EdgeConfig::default();
        let mut walls = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let mut p = pool(n);
            let _ = edge_detect(&mut p, &img, &cfg);
            walls.push(p.wall_cycles());
        }
        for pair in walls.windows(2) {
            assert!(pair[1] < pair[0], "wall cycles not monotone: {walls:?}");
        }
    }

    fn test_frames(n: usize) -> Vec<GrayImage> {
        (0..n)
            .map(|f| {
                GrayImage::from_fn(64, 48, |x, y| {
                    ((x * 31 + y * 17 + f as u32 * 101).wrapping_mul(2654435761) >> 11) as u8
                })
            })
            .collect()
    }

    #[test]
    fn pipelined_edge_detect_matches_per_frame() {
        let frames = test_frames(3);
        let cfg = EdgeConfig::default();
        let mut single = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want: Vec<_> = frames
            .iter()
            .map(|img| ir::edge_detect(&mut single, img, &cfg, LowerLevel::Opt))
            .collect();
        for n in [1, 2, 4] {
            let mut p = PimMachineBuilder::new(ArrayConfig::qvga_banks(6))
                .dma(pimvo_pim::DmaConfig::default())
                .build_pool(n);
            let got = edge_detect_pipelined(&mut p, &frames, &cfg);
            for (f, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.lpf, w.lpf, "lpf mismatch at n={n} frame {f}");
                assert_eq!(g.hpf, w.hpf, "hpf mismatch at n={n} frame {f}");
                assert_eq!(g.mask, w.mask, "mask mismatch at n={n} frame {f}");
            }
        }
    }

    #[test]
    fn pipelined_overlap_hides_transfer_cycles() {
        let frames = test_frames(4);
        let cfg = EdgeConfig::default();

        // synchronous arm: no channels, every transfer serializes
        let mut sync = pool(2);
        for img in &frames {
            let _ = edge_detect(&mut sync, img, &cfg);
        }
        sync.dma_settle(); // absorb trailing host reads into the wall

        // overlap arm: channels on, next frame prefetched behind compute
        let mut dma = PimMachineBuilder::new(ArrayConfig::qvga_banks(6))
            .dma(pimvo_pim::DmaConfig::default())
            .build_pool(2);
        let _ = edge_detect_pipelined(&mut dma, &frames, &cfg);

        // identical compute work, strictly fewer wall cycles
        assert_eq!(dma.merged_stats().cycles, sync.merged_stats().cycles);
        assert!(
            dma.wall_cycles() < sync.wall_cycles(),
            "overlap did not pay: dma {} >= sync {}",
            dma.wall_cycles(),
            sync.wall_cycles()
        );
    }

    #[test]
    fn pooled_downsample_matches_single_array() {
        let img = test_image();
        let mut single = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::downsample2x(&mut single, &img, LowerLevel::Opt);
        for n in [1, 2, 5] {
            let mut p = pool(n);
            assert_eq!(downsample2x(&mut p, &img), want, "n={n}");
        }
    }

    #[test]
    fn pool_larger_than_image_degrades_gracefully() {
        // 10 rows over 16 arrays: 6 empty strips
        let img = GrayImage::from_fn(32, 10, |x, y| (x ^ y) as u8);
        let mut single = PimMachine::new(ArrayConfig::qvga_banks(6));
        let want = ir::lpf(&mut single, &img, LowerLevel::Opt);
        let mut p = pool(16);
        assert_eq!(lpf(&mut p, &img), want);
    }
}
