//! Multi-register PIM mappings — the paper's §5.4 scaling study.
//!
//! The paper closes with: *"Using one Tmp Reg is a modest setup in this
//! work, and we could use more registers to further improve the
//! efficiency of both computation and power."*
//!
//! Deprecated thin wrappers: the kernels are defined once as macro-op
//! IR programs in [`crate::ir`], and the multi-register schedule is now
//! produced by the [`LowerLevel::MultiReg`] lowering — spills go to
//! extra temporary registers ([`PimMachine::save_tmp`]) instead of SRAM
//! scratch rows, eliding almost all write-backs (and their dominant
//! SRAM energy). Outputs are bit-identical to [`crate::scalar`]; only
//! the cost changes.

use crate::{ir, EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LowerLevel, PimMachine};

pub use crate::ir::REGS_REQUIRED;

/// Runs the full pipeline with the multi-register lowering.
///
/// # Panics
///
/// Panics if the machine has fewer than [`REGS_REQUIRED`] temporary
/// registers (enable them with [`PimMachine::set_tmp_regs`]) or fewer
/// than 6 banks of 256 rows.
#[deprecated(note = "use ir::edge_detect with LowerLevel::MultiReg")]
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    ir::edge_detect(m, img, cfg, LowerLevel::MultiReg(REGS_REQUIRED))
}

/// Multi-register HPF mapping.
#[deprecated(note = "use ir::hpf with LowerLevel::MultiReg")]
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    ir::hpf(m, lpf_map, LowerLevel::MultiReg(REGS_REQUIRED))
}

/// Multi-register NMS mapping.
#[deprecated(note = "use ir::nms with LowerLevel::MultiReg")]
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    ir::nms(m, hpf_map, cfg, LowerLevel::MultiReg(REGS_REQUIRED))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        m.set_tmp_regs(REGS_REQUIRED);
        m
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 19 + y * 41).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    #[test]
    fn multireg_hpf_matches_scalar() {
        let l = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &l), scalar::hpf(&l));
    }

    #[test]
    fn multireg_nms_matches_scalar() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn multireg_pipeline_matches_single_register() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let single = ir::edge_detect(&mut m1, &img, &cfg, pimvo_pim::LowerLevel::Opt);
        let mut m4 = machine();
        let multi = edge_detect(&mut m4, &img, &cfg);
        assert_eq!(single.mask, multi.mask);
        assert_eq!(single.hpf, multi.hpf);
    }

    #[test]
    fn multireg_saves_sram_traffic_and_energy() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = ir::edge_detect(&mut m1, &img, &cfg, pimvo_pim::LowerLevel::Opt);
        let mut m4 = machine();
        let _ = edge_detect(&mut m4, &img, &cfg);

        let (s1, s4) = (m1.stats(), m4.stats());
        assert!(
            s4.sram_writes < s1.sram_writes / 2,
            "writes {} vs {}",
            s4.sram_writes,
            s1.sram_writes
        );
        let cost = pimvo_pim::CostModel::default();
        let (e1, e4) = (s1.energy(&cost), s4.energy(&cost));
        assert!(
            e4.total_pj() < 0.85 * e1.total_pj(),
            "energy {} vs {}",
            e4.total_pj(),
            e1.total_pj()
        );
    }

    #[test]
    #[should_panic(expected = "Tmp registers")]
    fn single_register_machine_is_rejected() {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = hpf(&mut m, &test_image());
    }
}
