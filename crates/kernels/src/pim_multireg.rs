//! Multi-register PIM mappings — the paper's §5.4 scaling study.
//!
//! The paper closes with: *"Using one Tmp Reg is a modest setup in this
//! work, and we could use more registers to further improve the
//! efficiency of both computation and power."* This module implements
//! that extension for the HPF and NMS kernels: with four temporary
//! registers, every per-row intermediate that [`crate::pim_opt`] must
//! round-trip through SRAM scratch rows stays in the register file,
//! eliding almost all write-backs (and their dominant SRAM energy).
//!
//! Outputs are bit-identical to [`crate::scalar`] / [`crate::pim_opt`];
//! only the cost changes. The LPF mapping has no scratch traffic to
//! elide and is reused from `pim_opt`.

use crate::pim_util::{apply_ghost_mask, ghost_mask, load_image, read_image, row_or_zero, Regions};
use crate::{pim_opt, EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LaneWidth, LogicFunc, Operand, PimMachine, Signedness};

use Operand::{Reg, Row, Tmp};

/// Temporary registers the mappings below require.
pub const REGS_REQUIRED: u8 = 4;

/// Runs the full pipeline with the multi-register HPF/NMS mappings.
///
/// # Panics
///
/// Panics if the machine has fewer than [`REGS_REQUIRED`] temporary
/// registers (enable them with [`PimMachine::set_tmp_regs`]) or fewer
/// than 6 banks of 256 rows.
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    check_regs(m);
    let regions = Regions::for_machine(m, img.height());
    let w = load_image(m, regions.input, img) as u32;
    let h = img.height();

    // LPF is already register-minimal; reuse the optimized mapping
    let lpf = pim_opt::lpf(m, img);

    hpf_rows(m, &regions, regions.aux2, regions.aux3, h, w as usize);
    let hpf = read_image(m, regions.aux3, w, h);

    nms_rows(m, &regions, regions.aux3, regions.out, h, w as usize, cfg);
    let mut mask = read_image(m, regions.out, w, h);
    mask.clear_border(cfg.border);

    EdgeMaps { lpf, hpf, mask }
}

/// Multi-register HPF mapping.
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    check_regs(m);
    let regions = Regions::for_machine(m, lpf_map.height());
    let w = load_image(m, regions.aux2, lpf_map) as u32;
    hpf_rows(
        m,
        &regions,
        regions.aux2,
        regions.aux3,
        lpf_map.height(),
        w as usize,
    );
    read_image(m, regions.aux3, w, lpf_map.height())
}

/// Multi-register NMS mapping.
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    check_regs(m);
    let regions = Regions::for_machine(m, hpf_map.height());
    let w = load_image(m, regions.aux3, hpf_map) as u32;
    nms_rows(
        m,
        &regions,
        regions.aux3,
        regions.out,
        hpf_map.height(),
        w as usize,
        cfg,
    );
    let mut mask = read_image(m, regions.out, w, hpf_map.height());
    mask.clear_border(cfg.border);
    mask
}

fn check_regs(m: &PimMachine) {
    assert!(
        m.tmp_reg_count() >= REGS_REQUIRED,
        "multi-register mapping needs {} Tmp registers, machine has {} \
         (call set_tmp_regs)",
        REGS_REQUIRED,
        m.tmp_reg_count()
    );
}

/// HPF with the three out-of-order direction maps held in registers:
/// one SRAM write-back per row (the output itself).
fn hpf_rows(m: &mut PimMachine, r: &Regions, src: usize, dst: usize, h: u32, w: usize) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    for y in 0..h as i64 {
        let a = row_or_zero(r, src, y - 1, h);
        let b = row_or_zero(r, src, y, h);
        let c = row_or_zero(r, src, y + 1, h);

        m.abs_diff_sh(Row(c), Row(a), 2); // |c1 - a3|
        m.save_tmp(1);
        m.abs_diff(Row(a), Row(c)); // |a2 - c2| (anchored at x)
        m.save_tmp(2);
        m.abs_diff_sh(Row(b), Row(b), 2); // |b1 - b3|
        m.save_tmp(3);

        m.abs_diff_sh(Row(a), Row(c), 2); // |a1 - c3|
        m.avg(Tmp, Reg(1)); // avg of the diagonals
        m.save_tmp(1);
        m.avg_sh(Reg(3), Reg(2), 1); // avg(horiz, vert re-anchored)
        m.avg(Tmp, Reg(1)); // final SAD/4 response
        m.shift_pix(Tmp, -1);
        apply_ghost_mask(m, mask);
        m.writeback(dst + y as usize);
    }
}

/// NMS with the directional maxima, K and M masks in registers.
fn nms_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    cfg: &EdgeConfig,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(0), cfg.th1 as i64)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(1), cfg.th2 as i64)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    for y in 0..h as i64 {
        let a = row_or_zero(r, src, y - 1, h);
        let b = row_or_zero(r, src, y, h);
        let c = row_or_zero(r, src, y + 1, h);

        m.max_sh(Row(a), Row(c), 2); // max(a1, c3)
        m.save_tmp(1);
        m.max(Row(a), Row(c)); // max(a2, c2), anchored at x
        m.save_tmp(2);
        m.max_sh(Row(c), Row(a), 2); // max(c1, a3)
        m.save_tmp(3);

        m.max_sh(Row(b), Row(b), 2); // max(b1, b3)
        m.min(Tmp, Reg(1));
        m.min_sh(Tmp, Reg(2), 1);
        m.min(Tmp, Reg(3));
        m.shift_pix(Tmp, -1); // K re-centred
        apply_ghost_mask(m, mask);
        m.save_tmp(1); // K

        m.sat_sub(Row(b), Row(r.th(0))); // L = sat(B - th1)
        m.cmp_gt(Tmp, Reg(1)); // M = L > K
        m.save_tmp(2);
        m.cmp_gt(Row(b), Row(r.th(1))); // N = B > th2
        m.logic(LogicFunc::And, Tmp, Reg(2));
        m.writeback(dst + y as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        m.set_tmp_regs(REGS_REQUIRED);
        m
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 19 + y * 41).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    #[test]
    fn multireg_hpf_matches_scalar() {
        let l = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &l), scalar::hpf(&l));
    }

    #[test]
    fn multireg_nms_matches_scalar() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn multireg_pipeline_matches_single_register() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let single = pim_opt::edge_detect(&mut m1, &img, &cfg);
        let mut m4 = machine();
        let multi = edge_detect(&mut m4, &img, &cfg);
        assert_eq!(single.mask, multi.mask);
        assert_eq!(single.hpf, multi.hpf);
    }

    #[test]
    fn multireg_saves_sram_traffic_and_energy() {
        let img = test_image();
        let cfg = EdgeConfig::default();
        let mut m1 = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = pim_opt::edge_detect(&mut m1, &img, &cfg);
        let mut m4 = machine();
        let _ = edge_detect(&mut m4, &img, &cfg);

        let (s1, s4) = (m1.stats(), m4.stats());
        assert!(
            s4.sram_writes < s1.sram_writes / 2,
            "writes {} vs {}",
            s4.sram_writes,
            s1.sram_writes
        );
        let cost = pimvo_pim::CostModel::default();
        let (e1, e4) = (s1.energy(&cost), s4.energy(&cost));
        assert!(
            e4.total_pj() < 0.85 * e1.total_pj(),
            "energy {} vs {}",
            e4.total_pj(),
            e1.total_pj()
        );
    }

    #[test]
    #[should_panic(expected = "Tmp registers")]
    fn single_register_machine_is_rejected() {
        let mut m = PimMachine::new(ArrayConfig::qvga_banks(6));
        let _ = hpf(&mut m, &test_image());
    }
}
