//! Naive PIM mappings of the edge-detection kernels — the comparison
//! point of Fig. 9-b.
//!
//! Deprecated thin wrappers: the kernels are defined once as macro-op
//! IR programs in [`crate::ir`], and "naive" is now simply the
//! [`LowerLevel::Naive`] lowering — fused shifts expanded into
//! stand-alone shift + write-back pairs, and every intermediate
//! written back to SRAM and re-read by its consumers (no Tmp-Reg
//! chaining). Outputs are **bit-identical** to [`crate::scalar`];
//! only the cycle/energy cost differs.

use crate::{ir, EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LowerLevel, PimMachine};

/// Runs the full naive pipeline (LPF → HPF → NMS).
///
/// # Panics
///
/// Panics if the machine has fewer than 6 banks of 256 rows.
#[deprecated(note = "use ir::edge_detect with LowerLevel::Naive")]
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    ir::edge_detect(m, img, cfg, LowerLevel::Naive)
}

/// Naive LPF mapping.
#[deprecated(note = "use ir::lpf with LowerLevel::Naive")]
pub fn lpf(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    ir::lpf(m, img, LowerLevel::Naive)
}

/// Naive HPF mapping.
#[deprecated(note = "use ir::hpf with LowerLevel::Naive")]
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    ir::hpf(m, lpf_map, LowerLevel::Naive)
}

/// Naive NMS mapping.
#[deprecated(note = "use ir::nms with LowerLevel::Naive")]
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    ir::nms(m, hpf_map, cfg, LowerLevel::Naive)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::scalar;
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga_banks(6))
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 11 + y * 29).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    #[test]
    fn naive_lpf_matches_scalar() {
        let img = test_image();
        let mut m = machine();
        assert_eq!(lpf(&mut m, &img), scalar::lpf(&img));
    }

    #[test]
    fn naive_hpf_matches_scalar() {
        let l = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &l), scalar::hpf(&l));
    }

    #[test]
    fn naive_nms_matches_scalar() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn naive_is_slower_than_optimized() {
        let img = test_image();
        let cfg = EdgeConfig::default();

        let mut mn = machine();
        let out_naive = edge_detect(&mut mn, &img, &cfg);
        let mut mo = machine();
        let out_opt = ir::edge_detect(&mut mo, &img, &cfg, LowerLevel::Opt);

        assert_eq!(out_naive.mask, out_opt.mask);
        let (cn, co) = (mn.stats().cycles, mo.stats().cycles);
        assert!(
            cn > co && (cn as f64) / (co as f64) > 1.3,
            "naive {cn} vs opt {co}"
        );
    }
}
