//! Naive PIM mappings of the edge-detection kernels — the comparison
//! point of Fig. 9-b.
//!
//! "Naive" means a straightforward, per-operand translation of each
//! kernel without the paper's data-layout and scheduling optimizations:
//!
//! * every pixel shift is a stand-alone instruction whose result is
//!   written back to SRAM before being consumed (no fused
//!   shift-and-accumulate);
//! * no Tmp-Reg chaining — every intermediate value round-trips through
//!   the array;
//! * no algebraic simplification — the NMS kernel executes the original
//!   nine threshold comparisons and eight logic combines of Fig. 4's
//!   "old" form, and the LPF re-computes the vertical average for every
//!   horizontal tap instead of reusing it.
//!
//! The outputs are **bit-identical** to [`crate::scalar`] and
//! [`crate::pim_opt`]; only the cycle/energy cost differs.

use crate::pim_util::{apply_ghost_mask, ghost_mask, load_image, read_image, row_or_zero, Regions};
use crate::{EdgeConfig, EdgeMaps, GrayImage};
use pimvo_pim::{LaneWidth, LogicFunc, Operand, PimMachine, Signedness};

use Operand::{Row, Tmp};

/// Runs the full naive pipeline (LPF → HPF → NMS).
///
/// # Panics
///
/// Panics if the machine has fewer than 6 banks of 256 rows.
pub fn edge_detect(m: &mut PimMachine, img: &GrayImage, cfg: &EdgeConfig) -> EdgeMaps {
    let regions = Regions::for_machine(m, img.height());
    let w = load_image(m, regions.input, img) as u32;
    let h = img.height();

    lpf_rows(m, &regions, regions.input, regions.aux2, h, w as usize);
    let lpf = read_image(m, regions.aux2, w, h);

    hpf_rows(m, &regions, regions.aux2, regions.aux3, h, w as usize);
    let hpf = read_image(m, regions.aux3, w, h);

    nms_rows(m, &regions, regions.aux3, regions.out, h, w as usize, cfg);
    let mut mask = read_image(m, regions.out, w, h);
    mask.clear_border(cfg.border);

    EdgeMaps { lpf, hpf, mask }
}

/// Naive LPF mapping.
pub fn lpf(m: &mut PimMachine, img: &GrayImage) -> GrayImage {
    let regions = Regions::for_machine(m, img.height());
    let w = load_image(m, regions.input, img) as u32;
    lpf_rows(
        m,
        &regions,
        regions.input,
        regions.aux2,
        img.height(),
        w as usize,
    );
    read_image(m, regions.aux2, w, img.height())
}

/// Naive HPF mapping.
pub fn hpf(m: &mut PimMachine, lpf_map: &GrayImage) -> GrayImage {
    let regions = Regions::for_machine(m, lpf_map.height());
    let w = load_image(m, regions.aux2, lpf_map) as u32;
    hpf_rows(
        m,
        &regions,
        regions.aux2,
        regions.aux3,
        lpf_map.height(),
        w as usize,
    );
    read_image(m, regions.aux3, w, lpf_map.height())
}

/// Naive NMS mapping (original branch-compound form).
pub fn nms(m: &mut PimMachine, hpf_map: &GrayImage, cfg: &EdgeConfig) -> GrayImage {
    let regions = Regions::for_machine(m, hpf_map.height());
    let w = load_image(m, regions.aux3, hpf_map) as u32;
    nms_rows(
        m,
        &regions,
        regions.aux3,
        regions.out,
        hpf_map.height(),
        w as usize,
        cfg,
    );
    let mut mask = read_image(m, regions.out, w, hpf_map.height());
    mask.clear_border(cfg.border);
    mask
}

/// Naive LPF: the same two 2x2 passes, but the horizontal stage
/// re-computes the shifted vertical average from scratch (stand-alone
/// shifts + write-backs of both source rows) instead of reusing the
/// Tmp-Reg value with a fused shift.
fn lpf_rows(m: &mut PimMachine, r: &Regions, src: usize, dst: usize, h: u32, w: usize) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    // pass 1 into aux1
    for y in 0..h as i64 {
        let a = row_or_zero(r, src, y, h);
        let b = row_or_zero(r, src, y + 1, h);
        m.avg(Row(a), Row(b)); // C = (A + B) / 2
        m.writeback(r.s(0));
        // shifted copy of C, recomputed via stand-alone shift + store
        m.shift_pix(Row(r.s(0)), 1);
        m.writeback(r.s(1));
        m.avg(Row(r.s(0)), Row(r.s(1)));
        m.writeback(r.aux1 + y as usize);
    }
    // pass 2 into dst
    for y in 0..h as i64 {
        let a = row_or_zero(r, r.aux1, y - 1, h);
        let b = row_or_zero(r, r.aux1, y, h);
        m.avg(Row(a), Row(b));
        m.writeback(r.s(0));
        m.shift_pix(Row(r.s(0)), -1);
        apply_ghost_mask(m, mask);
        m.writeback(r.s(1));
        m.avg(Row(r.s(0)), Row(r.s(1)));
        m.writeback(dst + y as usize);
    }
}

/// Naive HPF: every aligned operand is materialized in SRAM via a
/// stand-alone shift + write-back before its absolute difference, and
/// the four direction maps are summed through the array instead of the
/// Tmp Reg.
fn hpf_rows(m: &mut PimMachine, r: &Regions, src: usize, dst: usize, h: u32, w: usize) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    for y in 0..h as i64 {
        let a = row_or_zero(r, src, y - 1, h);
        let b = row_or_zero(r, src, y, h);
        let c = row_or_zero(r, src, y + 1, h);

        // d_diag1 = |a1 - c3|: shift C by 2, store, abs-diff, store
        m.shift_pix(Row(c), 2);
        m.writeback(r.s(0));
        m.abs_diff(Row(a), Row(r.s(0)));
        m.writeback(r.s(1)); // d_diag1 anchored at x-1

        // d_diag2 = |c1 - a3|
        m.shift_pix(Row(a), 2);
        m.writeback(r.s(0));
        m.abs_diff(Row(c), Row(r.s(0)));
        m.writeback(r.s(2));

        // d_vert = |a2 - c2|, then re-anchor by a stand-alone shift
        m.abs_diff(Row(a), Row(c));
        m.writeback(r.s(0));
        m.shift_pix(Row(r.s(0)), 1);
        m.writeback(r.s(3));

        // d_horiz = |b1 - b3|
        m.shift_pix(Row(b), 2);
        m.writeback(r.s(0));
        m.abs_diff(Row(b), Row(r.s(0)));
        m.writeback(r.s(4));

        // SAD/4 averaging tree, each partial written back
        m.avg(Row(r.s(1)), Row(r.s(2)));
        m.writeback(r.s(0));
        m.avg(Row(r.s(3)), Row(r.s(4)));
        m.writeback(r.s(5));
        m.avg(Row(r.s(0)), Row(r.s(5)));
        m.writeback(r.s(0));
        // re-centre and store the output row
        m.shift_pix(Row(r.s(0)), -1);
        apply_ghost_mask(m, mask);
        m.writeback(dst + y as usize);
    }
}

/// Naive NMS: a literal mapping of the original compound of nine
/// comparisons and eight branches (Fig. 4, "old kernel"), with every
/// neighbour alignment, threshold difference and mask combine staged
/// through SRAM.
///
/// For each opposing pair `(p, q)` the branch `(b2 - p) > th1 &&
/// (b2 - q) > th1` is computed with saturating subtraction (identical
/// to the signed comparison for unsigned pixels) and the four pair
/// masks are OR-combined, then AND-ed with `b2 > th2`.
fn nms_rows(
    m: &mut PimMachine,
    r: &Regions,
    src: usize,
    dst: usize,
    h: u32,
    w: usize,
    cfg: &EdgeConfig,
) {
    m.set_lanes(LaneWidth::W8, Signedness::Unsigned);
    m.host_broadcast(r.zero_row(), 0)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(0), cfg.th1 as i64)
        .expect("host I/O row in range");
    m.host_broadcast(r.th(1), cfg.th2 as i64)
        .expect("host I/O row in range");
    let mask = ghost_mask(m, r, w);
    for y in 0..h as i64 {
        let a = row_or_zero(r, src, y - 1, h);
        let b = row_or_zero(r, src, y, h);
        let c = row_or_zero(r, src, y + 1, h);

        // b2 aligned to the anchor i = x - 1: lane i holds B[i + 1]
        m.shift_pix(Row(b), 1);
        m.writeback(r.s(7));

        // Neighbour rows aligned to anchor i = x - 1:
        //   pair 1: (a1, c3) = (A[i],   C[i+2])
        //   pair 2: (a2, c2) = (A[i+1], C[i+1])
        //   pair 3: (a3, c1) = (A[i+2], C[i])
        //   pair 4: (b1, b3) = (B[i],   B[i+2])
        let pairs: [(usize, i32, usize, i32); 4] =
            [(a, 0, c, 2), (a, 1, c, 1), (a, 2, c, 0), (b, 0, b, 2)];
        // s(6) accumulates the OR of the pair masks
        m.logic(LogicFunc::And, Row(r.zero_row()), Row(r.zero_row()));
        m.writeback(r.s(6));
        for (p_row, p_sh, q_row, q_sh) in pairs {
            // mask_p = sat(b2' - p) > th1
            m.shift_pix(Row(p_row), p_sh); // align p to the anchor x-1
            m.writeback(r.s(0));
            m.sat_sub(Row(r.s(7)), Row(r.s(0)));
            m.writeback(r.s(1));
            m.cmp_gt(Row(r.s(1)), Row(r.th(0)));
            m.writeback(r.s(2));
            // mask_q = sat(b2' - q) > th1
            m.shift_pix(Row(q_row), q_sh);
            m.writeback(r.s(0));
            m.sat_sub(Row(r.s(7)), Row(r.s(0)));
            m.writeback(r.s(1));
            m.cmp_gt(Row(r.s(1)), Row(r.th(0)));
            m.logic(LogicFunc::And, Tmp, Row(r.s(2)));
            m.writeback(r.s(3));
            // OR into the running mask
            m.logic(LogicFunc::Or, Row(r.s(6)), Row(r.s(3)));
            m.writeback(r.s(6));
        }
        // N = b2 > th2 (at the natural anchor x), combined after
        // re-centring the pair mask
        m.shift_pix(Row(r.s(6)), -1);
        apply_ghost_mask(m, mask);
        m.writeback(r.s(5));
        m.cmp_gt(Row(b), Row(r.th(1)));
        m.logic(LogicFunc::And, Tmp, Row(r.s(5)));
        m.writeback(dst + y as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pim_opt, scalar};
    use pimvo_pim::ArrayConfig;

    fn machine() -> PimMachine {
        PimMachine::new(ArrayConfig::qvga_banks(6))
    }

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            ((x * 11 + y * 29).wrapping_mul(2654435761) >> 11) as u8
        })
    }

    #[test]
    fn naive_lpf_matches_scalar() {
        let img = test_image();
        let mut m = machine();
        assert_eq!(lpf(&mut m, &img), scalar::lpf(&img));
    }

    #[test]
    fn naive_hpf_matches_scalar() {
        let l = scalar::lpf(&test_image());
        let mut m = machine();
        assert_eq!(hpf(&mut m, &l), scalar::hpf(&l));
    }

    #[test]
    fn naive_nms_matches_scalar() {
        let cfg = EdgeConfig::default();
        let hmap = scalar::hpf(&scalar::lpf(&test_image()));
        let mut m = machine();
        let mut want = scalar::nms(&hmap, &cfg);
        want.clear_border(cfg.border);
        assert_eq!(nms(&mut m, &hmap, &cfg), want);
    }

    #[test]
    fn naive_is_slower_than_optimized() {
        let img = test_image();
        let cfg = EdgeConfig::default();

        let mut mn = machine();
        let out_naive = edge_detect(&mut mn, &img, &cfg);
        let mut mo = machine();
        let out_opt = pim_opt::edge_detect(&mut mo, &img, &cfg);

        assert_eq!(out_naive.mask, out_opt.mask);
        let (cn, co) = (mn.stats().cycles, mo.stats().cycles);
        assert!(
            cn > co && (cn as f64) / (co as f64) > 1.3,
            "naive {cn} vs opt {co}"
        );
    }
}
