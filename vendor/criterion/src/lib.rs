//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no crates.io access, so
//! this vendored crate implements the API subset the `pimvo-bench`
//! benches use: [`Criterion`], benchmark groups, `iter`/`iter_batched`,
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//! It measures wall-clock time with `std::time::Instant` and prints a
//! mean per-iteration figure — enough to compare runs locally, without
//! the statistical machinery or HTML reports of the real crate.

use std::time::{Duration, Instant};

/// Opaque-value hint preventing the optimizer from deleting benchmark work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Controls how [`Bencher::iter_batched`] amortizes setup cost.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to create; batch many per timing window.
    SmallInput,
    /// Inputs are expensive; use small batches.
    LargeInput,
}

/// Timing context handed to each `bench_function` closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        // warm-up pass, then the timed samples
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let mean = total.as_nanos() as f64 / iters.max(1) as f64;
        println!(
            "{}/{}: mean {:.1} ns/iter ({} samples)",
            self.name, id, mean, self.sample_size
        );
        self
    }

    /// Ends the group (kept for API parity; reporting is per-function).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (the offline analogue of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles bench functions under one group name (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        g.bench_function(format!("batched-{}", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
