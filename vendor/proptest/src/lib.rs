//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! this vendored crate reimplements the small API subset the test suite
//! uses: the [`proptest!`] macro, range / `any` / `collection::vec`
//! strategies, `prop_assert*` macros and [`ProptestConfig`].
//!
//! Inputs are generated from a deterministic splitmix64 stream seeded by
//! the test name, so every run exercises the same cases (reproducible CI
//! behaviour; no shrinking — a failing case panics with the assertion
//! message).

/// Strategy abstraction: something that can generate values from the
/// deterministic RNG.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. The offline analogue of proptest's `Strategy`.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draws one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let r = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + r) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo + r) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Full-domain strategy for a primitive type.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy with the given element strategy and
    /// length specification (exact `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo
                + if span > 1 {
                    rng.next_u64() as usize % span
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform6`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[S::Value; N]` with every element drawn from
    /// the same element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($fname:ident => $n:literal),*) => {$(
            /// Array strategy drawing each element from `element`.
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }
    uniform_fns!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform6 => 6, uniform8 => 8);
}

/// Test-runner plumbing: configuration, RNG and the case error type.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // the real crate defaults to 256; 64 keeps the simulator-heavy
            // suites fast while still exploring the input space
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!` (mirrors proptest's type so test
    /// bodies can `return Ok(())` early).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test identifier (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, `prop::array`).
    pub mod prop {
        pub use crate::{array, collection};
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let mut run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!("property '{}' failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in -50i64..50, b in 0u8..10, f in 1.5f64..2.5) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 10);
            prop_assert!((1.5..2.5).contains(&f));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(0u64..256, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 256));
        }

        #[test]
        fn early_return_ok_works(x in any::<u8>()) {
            if x > 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
